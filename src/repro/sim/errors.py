"""Exception types raised by the discrete-event simulation kernel.

The kernel distinguishes three failure families:

* :class:`SimulationError` — misuse of the kernel itself (scheduling into the
  past, re-triggering an event, ...).  These are programming errors in the
  model and are never caught by the kernel.
* :class:`Interrupt` — delivered *into* a process by :meth:`Process.interrupt`,
  modelling asynchronous cancellation (e.g. a watchdog firing while a driver
  thread sleeps on a doorbell).
* :class:`StopProcess` — internal control-flow exception used by
  :func:`repro.sim.core.Process` to implement ``Process.exit()``-style early
  return from deeply nested generators.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "EventLifecycleError",
    "Interrupt",
    "StopProcess",
]


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (negative delay, dead env, ...)."""


class EventLifecycleError(SimulationError):
    """An event was succeeded/failed more than once, or its value was read
    before it triggered."""


class Interrupt(Exception):
    """Asynchronously delivered into a :class:`~repro.sim.core.Process`.

    The interrupted process receives this exception at its current yield
    point.  ``cause`` carries an arbitrary payload describing why the
    interrupt happened (for the NTB models this is typically an IRQ vector
    or a cancellation reason).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]


class StopProcess(Exception):
    """Raised internally to terminate a process early with a return value."""

    def __init__(self, value: object = None):
        super().__init__(value)

    @property
    def value(self) -> object:
        return self.args[0]
