"""ShmemScope: causal span tracing for the NTB/OpenSHMEM stack.

A **span** is one timed activity on one *track* (a PE's op lane, an NTB
driver, a DMA engine, one direction of a PCIe cable, a service thread),
with parent/child causality — a 2-hop ``shmem_put`` renders as a tree:
the ``put`` root on PE 0 with slot-wait / payload-DMA / header-PIO /
doorbell children, the hop-1 ``bypass_forward`` span on the middle host
parented on the root, and the final ``deliver_put`` on the target.

Design rules (these are what keep the guarantees in docs/OBSERVABILITY.md
true):

* **Zero virtual-time cost.**  The scope only ever *reads* ``env.now``;
  it never schedules events, so a run with tracing enabled is
  byte-identical in virtual time to the same run without.
* **Per-process context.**  Each simulation :class:`~repro.sim.Process`
  carries its own span stack, keyed on ``env.active_process`` — a span
  opened inside a coroutine stays current across its suspensions without
  leaking into other processes interleaved at the same virtual time.
* **Cross-process causality without wire-format changes.**  The sender
  binds its current span to the outgoing :class:`Message` *value*
  (frozen, hashable); the receiving service thread adopts the binding
  when it decodes the identical header off the wire.  Channels are FIFO
  per direction, so bindings are queued and popped in order.
* **Balanced enter/exit.**  Spans are only opened through the
  :meth:`ShmemScope.span` context manager (the ``span-discipline`` lint
  rule forbids raw ``span_open``/``span_close`` outside this package),
  and the NTB invariant auditor checks no span is left open at
  quiescence (``repro.analysis.invariants.check_span_balance``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Optional

from .hist import HistogramRegistry

__all__ = ["Span", "ShmemScope", "NullScope", "NULL_SCOPE",
           "instrument_cluster"]


@dataclass(slots=True)
class Span:
    """One timed activity.  ``end is None`` while the span is open.

    Slotted: traced runs allocate one of these per instrumented activity,
    so the per-instance ``__dict__`` is worth eliding.
    """

    span_id: int
    parent_id: Optional[int]
    name: str                  # "put", "link_transit", "bypass_forward", ...
    category: str              # "op" | "driver" | "link" | "dma" | "service"
    track: str                 # display lane, e.g. "pe0", "host0.ntb.right"
    start: float
    end: Optional[float] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_open(self) -> bool:
        return self.end is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        close = f"{self.end:.2f}" if self.end is not None else "open"
        return (f"<Span #{self.span_id} {self.name}@{self.track} "
                f"[{self.start:.2f}, {close}]>")


class _SpanCtx:
    """Context manager returned by :meth:`ShmemScope.span`.

    Captures the owning process at ``__enter__`` so the matching pop at
    ``__exit__`` targets the right per-process stack even if the body
    suspended many times in between.
    """

    __slots__ = ("_scope", "_name", "_category", "_track", "_parent",
                 "_args", "_span", "_key")

    def __init__(self, scope: "ShmemScope", name: str, category: str,
                 track: str, parent: Optional[int], args: dict[str, Any]):
        self._scope = scope
        self._name = name
        self._category = category
        self._track = track
        self._parent = parent
        self._args = args
        self._span: Optional[Span] = None
        self._key: Any = None

    def __enter__(self) -> Span:
        scope = self._scope
        self._key = scope._context_key()
        parent = self._parent
        if parent is None:
            parent = scope._current_for_key(self._key)
        span = scope.span_open(self._name, self._category, self._track,
                               parent, self._args)
        scope._stacks.setdefault(self._key, []).append(span.span_id)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        self._scope.span_close(self._span)
        stack = self._scope._stacks.get(self._key)
        if stack and stack[-1] == self._span.span_id:
            stack.pop()
        elif stack and self._span.span_id in stack:  # pragma: no cover
            stack.remove(self._span.span_id)
        if not stack and self._key in self._scope._stacks:
            del self._scope._stacks[self._key]


_NO_PROCESS = object()  # context key for callback/dispatch contexts


class ShmemScope:
    """Span recorder + histogram registry for one simulation.

    One scope is shared by every instrumented component of a cluster
    (mirroring how ``cluster.shmemsan`` is shared): the first tracing
    :class:`~repro.core.runtime.ShmemRuntime` creates it, stores it as
    ``cluster.scope`` and wires it into drivers, DMA engines, doorbells
    and links with :func:`instrument_cluster`.
    """

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: list[Span] = []
        #: registry of log-bucketed latency histograms (op x size x hops).
        self.hist = HistogramRegistry()
        self._next_id = 1
        #: per-process span stacks, keyed on the active Process.
        self._stacks: dict[Any, list[int]] = {}
        #: spawned-process parent seeds (bind_process).
        self._seeds: dict[Any, int] = {}
        #: message-value -> FIFO of bound sender span ids.
        self._msg_bind: dict[Hashable, deque[int]] = {}
        #: parent span id (or None for roots) -> children in id order.
        #: Maintained at open time so children()/roots()/walk() are O(1)
        #: per span instead of scanning the whole span list.
        self._kids: dict[Optional[int], list[Span]] = {}

    # ------------------------------------------------------------- context
    def _context_key(self) -> Any:
        proc = self.env.active_process
        return proc if proc is not None else _NO_PROCESS

    def _current_for_key(self, key: Any) -> Optional[int]:
        stack = self._stacks.get(key)
        if stack:
            return stack[-1]
        return self._seeds.get(key)

    def current_span_id(self) -> Optional[int]:
        """The innermost open span of the active process (or its seed)."""
        return self._current_for_key(self._context_key())

    def current_label(self) -> str:
        """Human label of the current span — race-report annotation."""
        span_id = self.current_span_id()
        if span_id is None:
            return ""
        span = self.spans[span_id - 1]
        return f"{span.track}:{span.name}"

    # --------------------------------------------------------------- spans
    def span(self, name: str, category: str = "op", track: str = "",
             parent: Optional[int] = None, **args: Any) -> _SpanCtx:
        """Open a span for the duration of a ``with`` block.

        ``parent`` overrides the default parent (the current span of the
        active process); cross-process children pass the adopted sender
        span explicitly.
        """
        return _SpanCtx(self, name, category, track, parent, args)

    def span_open(self, name: str, category: str, track: str,
                  parent: Optional[int], args: dict[str, Any]) -> Span:
        """Low-level open.  Use :meth:`span` everywhere outside this
        package — the ``span-discipline`` lint rule enforces it."""
        span = Span(
            span_id=self._next_id, parent_id=parent, name=name,
            category=category, track=track, start=self.env.now, args=args,
        )
        self._next_id += 1
        # span_id == index + 1 (ids are dense, spans never removed), so
        # the spans list doubles as the id lookup table.
        self.spans.append(span)
        kids = self._kids.get(parent)
        if kids is None:
            self._kids[parent] = [span]
        else:
            kids.append(span)
        return span

    def span_close(self, span: Span) -> None:
        """Low-level close; see :meth:`span_open`."""
        span.end = self.env.now

    def instant(self, name: str, category: str = "driver", track: str = "",
                **args: Any) -> Span:
        """A zero-duration marker (doorbell latch, IRQ edge, ...)."""
        span = self.span_open(name, category, track,
                              self.current_span_id(), args)
        span.end = span.start
        return span

    # ------------------------------------------------- cross-process edges
    def bind_msg(self, msg: Hashable, span_id: Optional[int]) -> None:
        """Bind the sender's span to an outgoing message *value*.

        The receiver decodes an equal Message off the wire and adopts the
        binding; per-direction channels are FIFO, so a deque keyed on the
        frozen message value pairs sender and receiver deterministically.
        """
        if span_id is None:
            return
        self._msg_bind.setdefault(msg, deque()).append(span_id)

    def adopt_msg(self, msg: Hashable) -> Optional[int]:
        """Pop the sender span bound to ``msg`` (None if unbound)."""
        queue = self._msg_bind.get(msg)
        if not queue:
            return None
        span_id = queue.popleft()
        if not queue:
            del self._msg_bind[msg]
        return span_id

    def bind_process(self, process: Any, span_id: Optional[int]) -> None:
        """Seed a spawned process so its spans parent on ``span_id``."""
        if span_id is None:
            return
        self._seeds[process] = span_id

    # ----------------------------------------------------------- accessors
    def open_spans(self) -> list[Span]:
        """Spans not yet closed — must be empty at quiescence."""
        return [span for span in self.spans if span.end is None]

    def pending_bindings(self) -> int:
        """Message bindings never adopted — lost causality edges."""
        return sum(len(q) for q in self._msg_bind.values())

    def span_by_id(self, span_id: int) -> Span:
        return self.spans[span_id - 1]

    def children(self, span_id: int) -> list[Span]:
        return list(self._kids.get(span_id, ()))

    def roots(self) -> list[Span]:
        return list(self._kids.get(None, ()))

    def walk(self, span: Span) -> Iterator[Span]:
        """Yield ``span`` and all descendants, depth-first, in id order."""
        yield span
        for child in self.children(span.span_id):
            yield from self.walk(child)

    def subtree_end(self, span: Span) -> float:
        """Effective end: max close time over the span and descendants.

        A Put root closes at *local* completion; remote delivery children
        extend past it — this is the end-to-end horizon.
        """
        return max((s.end for s in self.walk(span) if s.end is not None),
                   default=span.start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ShmemScope spans={len(self.spans)} "
                f"open={len(self.open_spans())}>")


class _NullHist:
    """Histogram sink that drops everything (tracing disabled)."""

    def observe(self, key: str, value: float) -> None:
        pass

    def get(self, key: str):
        return None

    def items(self):
        return []


class NullScope:
    """Do-nothing scope: the default wired into every instrumented
    component, so instrumentation sites need no ``if scope`` branches
    and tracing-off runs pay only a no-op method call."""

    enabled = False

    def __init__(self) -> None:
        self.hist = _NullHist()

    def span(self, name: str, category: str = "op", track: str = "",
             parent: Optional[int] = None, **args: Any) -> "_NullCtx":
        return _NULL_CTX

    def instant(self, name: str, category: str = "driver", track: str = "",
                **args: Any) -> None:
        return None

    def bind_msg(self, msg: Hashable, span_id: Optional[int]) -> None:
        pass

    def adopt_msg(self, msg: Hashable) -> Optional[int]:
        return None

    def bind_process(self, process: Any, span_id: Optional[int]) -> None:
        pass

    def current_span_id(self) -> Optional[int]:
        return None

    def current_label(self) -> str:
        return ""


class _NullCtx:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CTX = _NullCtx()

#: Shared inert scope — components default to this until instrumented.
NULL_SCOPE = NullScope()


def instrument_cluster(cluster, scope: ShmemScope) -> None:
    """Point every instrumented component of ``cluster`` at ``scope``.

    Duck-typed on purpose: the hardware layers (``pcie``, ``ntb``) carry a
    ``scope`` attribute defaulting to :data:`NULL_SCOPE` and never import
    anything above themselves.
    """
    for (_host_id, _side), driver in sorted(cluster._drivers.items()):
        driver.scope = scope
        driver.endpoint.dma.scope = scope
        driver.endpoint.doorbell.scope = scope
    for _key, cable in sorted(cluster.cables.items()):
        cable.a_to_b.scope = scope
        cable.b_to_a.scope = scope
