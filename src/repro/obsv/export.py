"""Chrome trace-event (Perfetto) JSON export + hand-rolled validation.

The trace-event format is the JSON dialect understood by
``ui.perfetto.dev`` and ``chrome://tracing``: a ``traceEvents`` array of
"X" (complete), "i" (instant), "C" (counter) and "M" (metadata) events.
We map:

* each **PE** to a *process* (``pid`` = PE number) whose threads are its
  op lane (``pe0``) and service lane (``pe0.service``);
* each **host's hardware** (NTB drivers, DMA engines, doorbells, PCIe
  cable directions) to the matching host process, one *thread* per track;
* link utilisation (from :mod:`repro.obsv.sampler`) to "C" counter
  events on the link's track.

Timestamps are virtual µs passed straight through (the format's native
unit).  Span ids ride in ``args`` so the CLI can rebuild the tree from
an exported file alone.

Validation is hand-rolled (no jsonschema dependency):
:func:`validate_chrome_trace` returns a list of problems, empty when the
object is structurally sound.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .sampler import link_utilisation
from .spans import ShmemScope, Span

__all__ = ["to_chrome_trace", "dump_chrome_trace", "validate_chrome_trace"]

#: pid for tracks we cannot attribute to a PE or host (cables between
#: hosts are attributed to their first-named host instead).
_FABRIC_PID = 999


def _track_pid(track: str) -> int:
    """Map a track name to a process id: ``pe{N}...`` / ``host{N}...``."""
    for prefix in ("pe", "host"):
        if track.startswith(prefix):
            digits = ""
            for ch in track[len(prefix):]:
                if ch.isdigit():
                    digits += ch
                else:
                    break
            if digits:
                return int(digits)
    return _FABRIC_PID


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def to_chrome_trace(scope: ShmemScope,
                    utilisation_window_us: Optional[float] = None
                    ) -> dict[str, Any]:
    """Render a scope as a trace-event JSON object (ready to serialize)."""
    tracks = sorted({span.track or "untracked" for span in scope.spans})
    tids = {track: tid for tid, track in enumerate(tracks)}

    events: list[dict[str, Any]] = []
    pids_seen: dict[int, str] = {}
    for track in tracks:
        pid = _track_pid(track)
        if pid not in pids_seen:
            pids_seen[pid] = ("fabric" if pid == _FABRIC_PID
                              else track.split(".")[0])
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": tids[track],
            "args": {"name": track},
        })
    for pid in sorted(pids_seen):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": pids_seen[pid]},
        })

    for span in scope.spans:
        events.append(_span_event(span, tids))

    window = utilisation_window_us
    if window is None:
        horizon = max((s.end for s in scope.spans if s.end is not None),
                      default=0.0)
        window = max(horizon / 100.0, 1.0)
    for sample in link_utilisation(scope, window):
        events.append({
            "ph": "C", "name": "link_utilisation",
            "pid": _track_pid(sample.track),
            "tid": tids.get(sample.track, 0),
            "ts": sample.window_start,
            "args": {"busy_fraction": round(sample.busy_fraction, 4),
                     "bytes": sample.nbytes,
                     "track": sample.track},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obsv",
            "clock": "virtual-us",
            "spans": len(scope.spans),
        },
    }


def _span_event(span: Span, tids: dict[str, int]) -> dict[str, Any]:
    track = span.track or "untracked"
    args: dict[str, Any] = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
    }
    for key, value in span.args.items():
        args[key] = _json_safe(value)
    event: dict[str, Any] = {
        "name": span.name,
        "cat": span.category,
        "pid": _track_pid(track),
        "tid": tids[track],
        "ts": span.start,
        "args": args,
    }
    if span.end is not None and span.end > span.start:
        event["ph"] = "X"
        event["dur"] = span.end - span.start
    else:
        event["ph"] = "i"
        event["s"] = "t"  # thread-scoped instant
    return event


def dump_chrome_trace(scope: ShmemScope, path: str,
                      utilisation_window_us: Optional[float] = None) -> None:
    """Export ``scope`` to ``path`` as Perfetto-loadable JSON."""
    obj = to_chrome_trace(scope, utilisation_window_us)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural validation of a trace-event JSON object.

    Checks the subset of the spec we emit: required keys per phase type,
    numeric timestamps, non-negative durations, and metadata presence for
    every (pid, tid) used by an event.  Returns human-readable problems;
    an empty list means valid.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return ["top level: expected a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: expected a list"]

    named_threads: set[tuple[int, int]] = set()
    named_processes: set[int] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: expected an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing/non-string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing/non-int {key!r}")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_threads.add((event.get("pid"), event.get("tid")))
            elif event.get("name") == "process_name":
                named_processes.add(event.get("pid"))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing/non-numeric 'ts'")
        elif ts < 0:
            problems.append(f"{where}: negative ts {ts}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: 'X' event missing 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative dur {dur}")
        if ph in ("X", "i", "C") and not isinstance(event.get("args"),
                                                    dict):
            problems.append(f"{where}: missing 'args' object")

    for i, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") in ("M", None):
            continue
        pid, tid = event.get("pid"), event.get("tid")
        if isinstance(pid, int) and isinstance(tid, int):
            if (pid, tid) not in named_threads:
                problems.append(
                    f"traceEvents[{i}]: (pid={pid}, tid={tid}) has no "
                    "thread_name metadata"
                )
            if pid not in named_processes:
                problems.append(
                    f"traceEvents[{i}]: pid={pid} has no process_name "
                    "metadata"
                )

    return problems
