"""Link-utilisation sampler: busy fraction per NTB link per time window.

The ring congestion the paper's Fig. 8 "simultaneous" series measures is
exactly "how busy is each PCIe cable direction over time".  Rather than
scheduling sampling events (which would perturb virtual time), we derive
utilisation *post hoc* from the recorded ``link_transit`` spans: for each
link track, each window of ``window_us`` gets the fraction of the window
a wire occupancy span overlapped it, plus the bytes attributed
proportionally by overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spans import ShmemScope

__all__ = ["LinkSample", "link_utilisation"]


@dataclass(frozen=True)
class LinkSample:
    """Utilisation of one link direction over one virtual-time window."""

    track: str
    window_start: float
    window_us: float
    busy_us: float
    nbytes: int

    @property
    def busy_fraction(self) -> float:
        return self.busy_us / self.window_us if self.window_us else 0.0


def link_utilisation(scope: "ShmemScope",
                     window_us: float) -> Iterator[LinkSample]:
    """Yield windowed samples per link track, sorted (track, window)."""
    if window_us <= 0:
        raise ValueError(f"window_us must be positive, got {window_us}")
    by_track: dict[str, list] = {}
    for span in scope.spans:
        if span.name != "link_transit" or span.end is None:
            continue
        by_track.setdefault(span.track, []).append(span)

    for track in sorted(by_track):
        busy: dict[int, float] = {}
        moved: dict[int, float] = {}
        for span in by_track[track]:
            nbytes = span.args.get("nbytes", 0)
            duration = span.end - span.start
            first = int(span.start // window_us)
            last = int(span.end // window_us)
            # A serialization span can straddle window edges; split its
            # time (and bytes, proportionally) across them.
            for w in range(first, last + 1):
                lo = max(span.start, w * window_us)
                hi = min(span.end, (w + 1) * window_us)
                overlap = hi - lo
                if overlap <= 0 and duration > 0:
                    continue
                busy[w] = busy.get(w, 0.0) + overlap
                share = (overlap / duration) if duration > 0 else 1.0
                moved[w] = moved.get(w, 0.0) + nbytes * share
        for w in sorted(busy):
            yield LinkSample(
                track=track,
                window_start=w * window_us,
                window_us=window_us,
                busy_us=min(busy[w], window_us),
                nbytes=int(round(moved.get(w, 0.0))),
            )
