"""Offline analysis of exported traces: breakdown tables + flamegraph.

Works from the exported Chrome-trace JSON alone (span ids and parent ids
ride in each event's ``args``), so ``python -m repro.obsv trace.json``
can dissect a run produced on another machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TraceNode", "build_trees", "render_breakdown",
           "render_flamegraph"]

#: Span names that start operation trees in the exported trace.
_OP_NAMES = ("put", "get", "amo", "barrier")


@dataclass
class TraceNode:
    """One span rebuilt from an exported trace event."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    track: str
    start: float
    dur: float
    args: dict[str, Any] = field(default_factory=dict)
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def subtree_end(self) -> float:
        return max([self.start + self.dur]
                   + [child.subtree_end for child in self.children])

    @property
    def effective_dur(self) -> float:
        """End-to-end duration including remote descendants."""
        return self.subtree_end - self.start

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def build_trees(trace: dict[str, Any]) -> list[TraceNode]:
    """Rebuild span forests from a trace-event JSON object."""
    nodes: dict[int, TraceNode] = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") not in ("X", "i"):
            continue
        args = event.get("args", {})
        span_id = args.get("span_id")
        if span_id is None:
            continue
        nodes[span_id] = TraceNode(
            span_id=span_id,
            parent_id=args.get("parent_id"),
            name=event.get("name", "?"),
            category=event.get("cat", "?"),
            track=str(args.get("track", "")) or _thread_track(trace, event),
            start=event.get("ts", 0.0),
            dur=event.get("dur", 0.0),
            args={k: v for k, v in args.items()
                  if k not in ("span_id", "parent_id")},
        )
    roots: list[TraceNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.start, child.span_id))
    roots.sort(key=lambda node: (node.start, node.span_id))
    return roots


def _thread_track(trace: dict[str, Any], event: dict[str, Any]) -> str:
    for meta in trace.get("traceEvents", []):
        if (meta.get("ph") == "M" and meta.get("name") == "thread_name"
                and meta.get("pid") == event.get("pid")
                and meta.get("tid") == event.get("tid")):
            return meta.get("args", {}).get("name", "")
    return ""


def render_breakdown(roots: list[TraceNode]) -> str:
    """Per-op latency breakdown: where does each op class spend time?

    Groups operation roots by name, then attributes each descendant
    span's *self* time (duration minus its children's overlap-free time
    is overkill here; nested spans on the same process do not overlap
    their siblings, so plain duration per name is the honest measure)
    into phase rows.
    """
    ops = [root for root in roots if root.name in _OP_NAMES]
    if not ops:
        return "(no operation spans in trace)"
    lines: list[str] = []
    groups: dict[str, list[TraceNode]] = {}
    for op in ops:
        groups.setdefault(op.name, []).append(op)
    for op_name in sorted(groups):
        members = groups[op_name]
        total = sum(op.dur for op in members)
        effective = sum(op.effective_dur for op in members)
        lines.append(
            f"{op_name}: {len(members)} ops, "
            f"{total:.2f} us blocking, {effective:.2f} us end-to-end"
        )
        phase_time: dict[str, float] = {}
        phase_count: dict[str, int] = {}
        for op in members:
            for node in op.walk():
                if node is op:
                    continue
                phase_time[node.name] = (phase_time.get(node.name, 0.0)
                                         + node.dur)
                phase_count[node.name] = phase_count.get(node.name, 0) + 1
        header = (f"  {'phase':<18} {'spans':>6} {'total_us':>10} "
                  f"{'mean_us':>9} {'% of e2e':>9}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for phase in sorted(phase_time,
                            key=lambda p: (-phase_time[p], p)):
            t = phase_time[phase]
            n = phase_count[phase]
            pct = (100.0 * t / effective) if effective else 0.0
            lines.append(
                f"  {phase:<18} {n:>6} {t:>10.2f} {t / n:>9.2f} "
                f"{pct:>8.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_flamegraph(roots: list[TraceNode], max_ops: int = 8,
                      width: int = 72) -> str:
    """Text flamegraph: one indented bar per span, scaled to the root."""
    ops = [root for root in roots if root.name in _OP_NAMES]
    if not ops:
        return "(no operation spans in trace)"
    lines: list[str] = []
    for op in ops[:max_ops]:
        horizon = op.effective_dur or 1.0
        lines.append(
            f"{op.name} pe={op.args.get('pe', '?')} "
            f"peer={op.args.get('peer', '?')} "
            f"size={op.args.get('nbytes', '?')} "
            f"[{op.effective_dur:.2f} us]"
        )
        _flame_node(op, op.start, horizon, 0, width, lines)
        lines.append("")
    if len(ops) > max_ops:
        lines.append(f"... {len(ops) - max_ops} more ops not shown "
                     f"(--max-ops to raise)")
    return "\n".join(lines).rstrip()


def _flame_node(node: TraceNode, origin: float, horizon: float,
                depth: int, width: int, lines: list[str]) -> None:
    offset = int(round((node.start - origin) / horizon * width))
    length = max(1, int(round(node.dur / horizon * width)))
    offset = min(offset, width - 1)
    length = min(length, width - offset)
    bar = " " * offset + "#" * length
    label = f"{node.name}@{node.track}" if node.track else node.name
    lines.append(f"  {bar:<{width}}  {'  ' * depth}{label} "
                 f"{node.dur:.2f}us")
    for child in node.children:
        _flame_node(child, origin, horizon, depth + 1, width, lines)
