"""ShmemScope: span tracing, latency histograms and timeline export.

The observability layer of the reproduction (ISSUE 2).  Enable it with
``ShmemConfig(trace_spans=True)``; the resulting
:class:`~repro.obsv.ShmemScope` lands on ``report.scope`` and can be
exported with :func:`dump_chrome_trace` then opened in ``ui.perfetto.dev``
or dissected with ``python -m repro.obsv trace.json``.

Import direction: this package depends only on the stdlib, so the
hardware layers (``pcie``, ``ntb``) may import it without cycles.
"""

from .hist import HistogramRegistry, HistSummary, LogHistogram
from .metrics import (
    Counter,
    Gauge,
    Meter,
    MetricsRegistry,
    MetricsTicker,
    ScopedMetrics,
    TimeSeries,
    wire_cluster_metrics,
)
from .sampler import LinkSample, link_utilisation
from .spans import NULL_SCOPE, NullScope, ShmemScope, Span, \
    instrument_cluster

#: Deferred (PEP 562): the analysis/export/profiling/SLO helpers pull
#: rendering, filesystem or wall-clock machinery that the hot import path
#: (runtime bring-up, the smoke bench) never touches.
_LAZY_SUBMODULE = {
    "TraceNode": "analysis",
    "build_trees": "analysis",
    "render_breakdown": "analysis",
    "render_flamegraph": "analysis",
    "dump_chrome_trace": "export",
    "to_chrome_trace": "export",
    "validate_chrome_trace": "export",
    "DesProfiler": "profiler",
    "Stopwatch": "profiler",
    "SloReport": "slo",
    "SloRule": "slo",
    "SloRuleSet": "slo",
    "DEFAULT_RULES": "slo",
}


def __getattr__(name: str):
    submodule = _LAZY_SUBMODULE.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value
    return value

__all__ = [
    "Span",
    "ShmemScope",
    "NullScope",
    "NULL_SCOPE",
    "instrument_cluster",
    "LogHistogram",
    "HistogramRegistry",
    "HistSummary",
    "LinkSample",
    "link_utilisation",
    "Counter",
    "Gauge",
    "Meter",
    "TimeSeries",
    "MetricsRegistry",
    "ScopedMetrics",
    "MetricsTicker",
    "wire_cluster_metrics",
    "to_chrome_trace",
    "dump_chrome_trace",
    "validate_chrome_trace",
    "TraceNode",
    "build_trees",
    "render_breakdown",
    "render_flamegraph",
    "DesProfiler",
    "Stopwatch",
    "SloRule",
    "SloRuleSet",
    "SloReport",
    "DEFAULT_RULES",
]
