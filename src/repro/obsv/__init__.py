"""ShmemScope: span tracing, latency histograms and timeline export.

The observability layer of the reproduction (ISSUE 2).  Enable it with
``ShmemConfig(trace_spans=True)``; the resulting
:class:`~repro.obsv.ShmemScope` lands on ``report.scope`` and can be
exported with :func:`dump_chrome_trace` then opened in ``ui.perfetto.dev``
or dissected with ``python -m repro.obsv trace.json``.

Import direction: this package depends only on the stdlib, so the
hardware layers (``pcie``, ``ntb``) may import it without cycles.
"""

from .analysis import TraceNode, build_trees, render_breakdown, \
    render_flamegraph
from .export import dump_chrome_trace, to_chrome_trace, \
    validate_chrome_trace
from .hist import HistogramRegistry, HistSummary, LogHistogram
from .sampler import LinkSample, link_utilisation
from .spans import NULL_SCOPE, NullScope, ShmemScope, Span, \
    instrument_cluster

__all__ = [
    "Span",
    "ShmemScope",
    "NullScope",
    "NULL_SCOPE",
    "instrument_cluster",
    "LogHistogram",
    "HistogramRegistry",
    "HistSummary",
    "LinkSample",
    "link_utilisation",
    "to_chrome_trace",
    "dump_chrome_trace",
    "validate_chrome_trace",
    "TraceNode",
    "build_trees",
    "render_breakdown",
    "render_flamegraph",
]
