"""HdrHistogram-style log-bucketed latency histograms.

Latencies in a store-and-forward ring span four orders of magnitude
(sub-µs doorbell rings to multi-ms 512 KB bypass Puts), so fixed-width
buckets are useless and keeping raw samples is unbounded.  We use the
HdrHistogram trick: values are scaled to integers (0.01 µs resolution),
small values get exact linear buckets, larger values get 64 logarithmic
sub-buckets per power of two — bounding relative error at ~1.6 % while
recording in O(1) with a plain dict.

Exact count/sum/min/max are tracked alongside, so means are exact and
quantile estimates are clamped into ``[min, max]`` (a single-sample
histogram reports that sample for every quantile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["LogHistogram", "HistogramRegistry", "HistSummary"]

#: Fixed-point scale: 1 unit == 0.01 µs (10 ns).
_SCALE = 100.0
#: Values below 2**(_SUB_BITS) scaled units are binned exactly.
_SUB_BITS = 6
_SUB_COUNT = 1 << _SUB_BITS  # 64


def _bucket_index(value: int) -> int:
    if value < _SUB_COUNT:
        return value
    shift = value.bit_length() - 1 - _SUB_BITS
    return ((shift + 1) << _SUB_BITS) + ((value >> shift) - _SUB_COUNT)


def _bucket_low(index: int) -> int:
    """Smallest scaled value mapping to ``index`` (inverse of above)."""
    if index < _SUB_COUNT:
        return index
    shift = (index >> _SUB_BITS) - 1
    sub = (index & (_SUB_COUNT - 1)) + _SUB_COUNT
    return sub << shift


def _bucket_mid_us(index: int) -> float:
    """Representative (midpoint) value of a bucket, back in µs."""
    low = _bucket_low(index)
    if index < _SUB_COUNT:
        return low / _SCALE
    shift = (index >> _SUB_BITS) - 1
    return (low + (1 << shift) / 2.0) / _SCALE


@dataclass(frozen=True)
class HistSummary:
    """Snapshot of one histogram, ready for Row.extra / report tables."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    minimum: float
    maximum: float


class LogHistogram:
    """One op×size×hop latency distribution, log-bucketed."""

    __slots__ = ("name", "buckets", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str = ""):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value_us: float) -> None:
        if value_us < 0:
            value_us = 0.0
        scaled = int(value_us * _SCALE + 0.5)
        index = _bucket_index(scaled)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value_us
        if self.minimum is None or value_us < self.minimum:
            self.minimum = value_us
        if self.maximum is None or value_us > self.maximum:
            self.maximum = value_us

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 < q <= 1) from bucket midpoints."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        value = 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                value = _bucket_mid_us(index)
                break
        # Bucketing error never escapes the observed range.
        assert self.minimum is not None and self.maximum is not None
        return min(max(value, self.minimum), self.maximum)

    def summary(self) -> HistSummary:
        return HistSummary(
            count=self.count,
            mean=self.mean,
            p50=self.quantile(0.50),
            p90=self.quantile(0.90),
            p99=self.quantile(0.99),
            p999=self.quantile(0.999),
            minimum=self.minimum or 0.0,
            maximum=self.maximum or 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LogHistogram {self.name!r} n={self.count}>"


class HistogramRegistry:
    """Named histograms, created on first observation.

    Keys follow ``{op}.{mode}.{size}B.{hops}hop`` for the bench paths,
    but any string works.  Iteration is sorted for deterministic output.
    """

    def __init__(self) -> None:
        self._hists: dict[str, LogHistogram] = {}

    def observe(self, key: str, value_us: float) -> None:
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = LogHistogram(key)
        hist.observe(value_us)

    def get(self, key: str) -> Optional[LogHistogram]:
        return self._hists.get(key)

    def items(self) -> Iterator[tuple[str, LogHistogram]]:
        for key in sorted(self._hists):
            yield key, self._hists[key]

    def __len__(self) -> int:
        return len(self._hists)

    def render(self, title: str = "latency histograms") -> str:
        """Fixed-width table of every histogram's summary.

        The key column stretches to the longest key so long
        ``{op}.{mode}.{size}B.{hops}hop`` names cannot shear the table.
        """
        width = max([36] + [len(key) for key in self._hists])
        lines = [title,
                 f"{'key':<{width}} {'n':>6} {'mean':>9} {'p50':>9} "
                 f"{'p90':>9} {'p99':>9} {'p999':>9} {'max':>9}  [us]"]
        lines.append("-" * len(lines[1]))
        for key, hist in self.items():
            s = hist.summary()
            lines.append(
                f"{key:<{width}} {s.count:>6} {s.mean:>9.2f} {s.p50:>9.2f} "
                f"{s.p90:>9.2f} {s.p99:>9.2f} {s.p999:>9.2f} "
                f"{s.maximum:>9.2f}"
            )
        if len(lines) == 3:
            lines.append("  (no observations)")
        return "\n".join(lines)
