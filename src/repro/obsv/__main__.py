"""CLI: dissect an exported trace.

    python -m repro.obsv trace.json              # breakdown + flamegraph
    python -m repro.obsv trace.json --validate   # schema check only
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis import build_trees, render_breakdown, render_flamegraph
from .export import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obsv",
        description="Analyse a repro.obsv Chrome-trace JSON export.",
    )
    parser.add_argument("trace", help="path to an exported trace.json")
    parser.add_argument("--validate", action="store_true",
                        help="only validate the trace-event structure")
    parser.add_argument("--flame", action="store_true",
                        help="only print the flamegraph")
    parser.add_argument("--max-ops", type=int, default=8,
                        help="flamegraph: max operation trees to draw")
    args = parser.parse_args(argv)

    with open(args.trace, "r", encoding="utf-8") as fh:
        trace = json.load(fh)

    problems = validate_chrome_trace(trace)
    if problems:
        print(f"{args.trace}: INVALID trace-event JSON:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    n_events = len(trace.get("traceEvents", []))
    print(f"{args.trace}: valid trace-event JSON ({n_events} events)")
    if args.validate:
        return 0

    roots = build_trees(trace)
    if not args.flame:
        print()
        print(render_breakdown(roots))
    print()
    print(render_flamegraph(roots, max_ops=args.max_ops))
    return 0


if __name__ == "__main__":
    sys.exit(main())
