"""CLI: dissect an exported trace or a metrics snapshot.

    python -m repro.obsv trace trace.json          # breakdown + flamegraph
    python -m repro.obsv trace trace.json --validate
    python -m repro.obsv metrics metrics.json      # dashboard + sparklines

Legacy spelling (bare path, PR-2 era) still works::

    python -m repro.obsv trace.json [--validate] [--flame]

Missing or malformed input files print a one-line error and exit 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

#: Eight-step unicode sparkline ramp.
_SPARK = "▁▂▃▄▅▆▇█"


def _load_json(path: str) -> Any:
    """Read a JSON file or die with a one-line error (exit 2)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc.strerror}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _run_trace(args: argparse.Namespace) -> int:
    from .analysis import build_trees, render_breakdown, render_flamegraph
    from .export import validate_chrome_trace

    trace = _load_json(args.trace)
    problems = validate_chrome_trace(trace)
    if problems:
        print(f"{args.trace}: INVALID trace-event JSON:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    n_events = len(trace.get("traceEvents", []))
    print(f"{args.trace}: valid trace-event JSON ({n_events} events)")
    if args.validate:
        return 0

    roots = build_trees(trace)
    if not args.flame:
        print()
        print(render_breakdown(roots))
    print()
    print(render_flamegraph(roots, max_ops=args.max_ops))
    return 0


def sparkline(values: list[float], width: int = 32) -> str:
    """Render a value series as a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample by striding so the line always fits.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - low) / span * len(_SPARK)))]
        for v in values
    )


def _render_metrics(snapshot: dict[str, Any]) -> str:
    lines: list[str] = []
    now_us = snapshot.get("now_us")
    if now_us is not None:
        lines.append(f"metrics snapshot at t={now_us:g} µs")
    metrics = snapshot.get("metrics", {})
    if metrics:
        width = max(len(key) for key in metrics)
        lines.append("")
        lines.append(f"{'metric':<{width}} {'value':>14}")
        lines.append("-" * (width + 15))
        for key in sorted(metrics):
            value = metrics[key]
            lines.append(f"{key:<{width}} {value:>14g}")
    hists = snapshot.get("histograms", {})
    if hists:
        width = max(len(key) for key in hists)
        lines.append("")
        lines.append(
            f"{'histogram':<{width}} {'n':>6} {'mean':>9} {'p50':>9} "
            f"{'p99':>9} {'p999':>9} {'max':>9}  [us]")
        lines.append("-" * (width + 57))
        for key in sorted(hists):
            h = hists[key]
            lines.append(
                f"{key:<{width}} {h.get('count', 0):>6} "
                f"{h.get('mean', 0.0):>9.2f} {h.get('p50', 0.0):>9.2f} "
                f"{h.get('p99', 0.0):>9.2f} {h.get('p999', 0.0):>9.2f} "
                f"{h.get('max', 0.0):>9.2f}")
    series = snapshot.get("series", {})
    drawable = {key: [v for _t, v in points]
                for key, points in series.items() if len(points) >= 2}
    if drawable:
        width = max(len(key) for key in drawable)
        lines.append("")
        lines.append(f"time series ({len(drawable)} sampled)")
        lines.append("-" * (width + 35))
        for key in sorted(drawable):
            values = drawable[key]
            lines.append(f"{key:<{width}} {sparkline(values)} "
                         f"[{values[0]:g} → {values[-1]:g}]")
    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def _run_metrics(args: argparse.Namespace) -> int:
    snapshot = _load_json(args.snapshot)
    if not isinstance(snapshot, dict):
        print(f"error: {args.snapshot} is not a metrics snapshot object",
              file=sys.stderr)
        raise SystemExit(2)
    print(_render_metrics(snapshot))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obsv",
        description="Analyse repro.obsv exports: Chrome traces and "
                    "metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command")

    trace = sub.add_parser("trace", help="dissect a Chrome-trace export")
    trace.add_argument("trace", help="path to an exported trace.json")
    trace.add_argument("--validate", action="store_true",
                       help="only validate the trace-event structure")
    trace.add_argument("--flame", action="store_true",
                       help="only print the flamegraph")
    trace.add_argument("--max-ops", type=int, default=8,
                       help="flamegraph: max operation trees to draw")
    trace.set_defaults(func=_run_trace)

    metrics = sub.add_parser(
        "metrics", help="render a metrics snapshot (tables + sparklines)")
    metrics.add_argument("snapshot",
                         help="path to a metrics snapshot JSON "
                              "(repro-metrics/v1)")
    metrics.set_defaults(func=_run_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Legacy compatibility: `python -m repro.obsv trace.json [flags]`
    # (no subcommand) keeps working — CI and docs from PR 2 use it.
    if argv and argv[0] not in ("trace", "metrics", "-h", "--help"):
        argv = ["trace"] + list(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
