"""Declarative SLO rules evaluated against a :class:`MetricsRegistry`.

The missing half of "how is the system doing": metrics give you numbers,
this module gives you *judgments* — machine-checkable health rules that
bench ``--check`` and the CI chaos job gate on (ROADMAP item 5).

Rule syntax (one rule per line; ``#`` comments and blank lines ignored)::

    p99(put_us.32B.2hop) < 2500
    mean(get_us.*) <= 40000
    rate(pe*.retries) == 0 unless faults.severs > 0
    heartbeat.misses == 0 unless faults.severs > 0
    sim.events_dispatched > 0

* ``p50/p90/p99/p999/mean/max/min/count(key)`` read the registry's
  histograms (values in µs).  A ``*`` glob merges every matching
  histogram before taking the quantile.
* ``rate(key)`` is a counter/gauge value divided by elapsed virtual
  seconds; a bare ``key`` (no function) is the raw value.  Both resolve
  counters, then gauges, then meters; ``*`` globs sum matches.
* Comparators: ``< <= > >= == !=``.
* ``unless <key> <op> <number>`` waives the rule (reported as WAIVED,
  counts as passing) when the condition holds — the idiom for "zero
  retries *outside fault windows*".

A rule whose key never registered evaluates the subject as 0 for
counter-style reads but **fails** quantile reads (``p99`` of a histogram
nobody observed is a configuration error worth failing loudly on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Optional

from .hist import LogHistogram
from .metrics import MetricsRegistry

__all__ = ["SloError", "SloRule", "SloRuleSet", "SloResult", "SloReport",
           "DEFAULT_RULES"]

#: Bundled ruleset: health invariants every clean (fault-free) run must
#: satisfy; severed-cable runs waive the fault-coupled rules.
DEFAULT_RULES = """\
# ShmemMetrics default SLOs (docs/METRICS.md).
# A clean run retries nothing, reroutes nothing, misses no heartbeats.
pe*.retries == 0 unless faults.severs > 0
pe*.reroutes == 0 unless faults.severs > 0
pe*.wait_timeouts == 0 unless faults.severs > 0
heartbeat.misses == 0 unless faults.severs > 0
# The kernel must have actually simulated something.
sim.events_dispatched > 0
"""


class SloError(ValueError):
    """Malformed rule text."""


_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_QUANTILE_FUNCS = {"p50": 0.50, "p90": 0.90, "p99": 0.99, "p999": 0.999}
_HIST_FUNCS = ("mean", "max", "min", "count") + tuple(_QUANTILE_FUNCS)

_RULE_RE = re.compile(
    r"^\s*(?:(?P<func>[a-z0-9]+)\((?P<fkey>[^()]+)\)|(?P<key>[^\s<>=!]+))"
    r"\s*(?P<op><=|>=|==|!=|<|>)\s*(?P<value>[-+0-9.eE_]+)"
    r"(?:\s+unless\s+(?P<ukey>[^\s<>=!]+)\s*(?P<uop><=|>=|==|!=|<|>)"
    r"\s*(?P<uvalue>[-+0-9.eE_]+))?\s*$"
)


@dataclass(frozen=True)
class SloRule:
    """One parsed rule: ``func(key) op value [unless ukey uop uvalue]``."""

    text: str
    func: Optional[str]         # None = raw counter/gauge read
    key: str
    op: str
    value: float
    unless_key: Optional[str] = None
    unless_op: Optional[str] = None
    unless_value: Optional[float] = None

    @classmethod
    def parse(cls, line: str) -> "SloRule":
        match = _RULE_RE.match(line)
        if match is None:
            raise SloError(f"unparseable SLO rule: {line!r}")
        func = match.group("func")
        if func is not None and func != "rate" and func not in _HIST_FUNCS:
            raise SloError(
                f"unknown SLO function {func!r} in {line!r} (expected "
                f"rate or one of {', '.join(_HIST_FUNCS)})"
            )
        key = match.group("fkey") or match.group("key")
        try:
            value = float(match.group("value").replace("_", ""))
        except ValueError as exc:
            raise SloError(f"bad threshold in {line!r}") from exc
        uvalue = match.group("uvalue")
        return cls(
            text=line.strip(),
            func=func,
            key=key.strip(),
            op=match.group("op"),
            value=value,
            unless_key=match.group("ukey"),
            unless_op=match.group("uop"),
            unless_value=float(uvalue.replace("_", ""))
            if uvalue is not None else None,
        )


@dataclass(frozen=True)
class SloResult:
    """Outcome of one rule against one registry snapshot."""

    rule: SloRule
    passed: bool
    waived: bool
    actual: Optional[float]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.passed or self.waived

    def render(self) -> str:
        status = "WAIVED" if self.waived else \
            ("PASS" if self.passed else "FAIL")
        actual = "n/a" if self.actual is None else f"{self.actual:g}"
        line = f"[{status:>6}] {self.rule.text}  (actual: {actual})"
        if self.detail:
            line += f"  — {self.detail}"
        return line


@dataclass
class SloReport:
    """All rule outcomes for one evaluation."""

    results: list[SloResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> list[SloResult]:
        return [result for result in self.results if not result.ok]

    def render(self) -> str:
        lines = [f"SLO report: {len(self.results)} rules, "
                 f"{len(self.failures)} failing"]
        lines.extend(result.render() for result in self.results)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "rules": [
                {
                    "rule": result.rule.text,
                    "passed": result.passed,
                    "waived": result.waived,
                    "actual": result.actual,
                    "detail": result.detail,
                }
                for result in self.results
            ],
        }


class SloRuleSet:
    """A parsed collection of rules; evaluate against a registry."""

    def __init__(self, rules: list[SloRule]):
        self.rules = rules

    @classmethod
    def parse(cls, text: str) -> "SloRuleSet":
        rules = []
        for line in text.splitlines():
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            rules.append(SloRule.parse(stripped))
        return cls(rules)

    @classmethod
    def default(cls) -> "SloRuleSet":
        return cls.parse(DEFAULT_RULES)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, registry: MetricsRegistry,
                 elapsed_us: Optional[float] = None) -> SloReport:
        """Judge every rule; ``elapsed_us`` defaults to the env clock."""
        if elapsed_us is None:
            elapsed_us = registry.env.now
        report = SloReport()
        for rule in self.rules:
            report.results.append(self._evaluate_rule(
                rule, registry, elapsed_us))
        return report

    def _evaluate_rule(self, rule: SloRule, registry: MetricsRegistry,
                       elapsed_us: float) -> SloResult:
        if rule.unless_key is not None:
            condition = registry.value(rule.unless_key) or 0.0
            assert rule.unless_op is not None \
                and rule.unless_value is not None
            if _OPS[rule.unless_op](condition, rule.unless_value):
                return SloResult(
                    rule=rule, passed=False, waived=True, actual=None,
                    detail=f"{rule.unless_key}={condition:g}",
                )
        actual, detail = self._subject(rule, registry, elapsed_us)
        if actual is None:
            return SloResult(rule=rule, passed=False, waived=False,
                             actual=None, detail=detail)
        return SloResult(
            rule=rule, passed=_OPS[rule.op](actual, rule.value),
            waived=False, actual=actual, detail=detail,
        )

    def _subject(self, rule: SloRule, registry: MetricsRegistry,
                 elapsed_us: float) -> tuple[Optional[float], str]:
        func = rule.func
        if func is None:
            return registry.value(rule.key) or 0.0, ""
        if func == "rate":
            value = registry.value(rule.key) or 0.0
            if elapsed_us <= 0:
                return 0.0, "zero elapsed time"
            return value / (elapsed_us / 1e6), "per virtual second"
        hist = self._merged_hist(registry, rule.key)
        if hist is None or hist.count == 0:
            return None, f"no histogram matches {rule.key!r}"
        if func == "mean":
            return hist.mean, f"n={hist.count}"
        if func == "max":
            return hist.maximum or 0.0, f"n={hist.count}"
        if func == "min":
            return hist.minimum or 0.0, f"n={hist.count}"
        if func == "count":
            return float(hist.count), ""
        return hist.quantile(_QUANTILE_FUNCS[func]), f"n={hist.count}"

    @staticmethod
    def _merged_hist(registry: MetricsRegistry,
                     pattern: str) -> Optional[LogHistogram]:
        """The histogram for ``pattern``; globs merge matching buckets."""
        if "*" not in pattern and "?" not in pattern:
            return registry.hist.get(pattern)
        merged: Optional[LogHistogram] = None
        for key, hist in registry.hist.items():
            if not fnmatchcase(key, pattern):
                continue
            if merged is None:
                merged = LogHistogram(pattern)
            for index, count in hist.buckets.items():
                merged.buckets[index] = \
                    merged.buckets.get(index, 0) + count
            merged.count += hist.count
            merged.total += hist.total
            if hist.minimum is not None and (
                    merged.minimum is None or hist.minimum < merged.minimum):
                merged.minimum = hist.minimum
            if hist.maximum is not None and (
                    merged.maximum is None or hist.maximum > merged.maximum):
                merged.maximum = hist.maximum
        return merged
