"""ShmemMetrics: the always-on metrics fabric (ISSUE 7).

ShmemScope (spans, :mod:`repro.obsv.spans`) answers "where did this one
put spend its time"; this module answers "how is the system doing".  A
single :class:`MetricsRegistry` per cluster holds typed instruments —

* :class:`Counter` — monotonically increasing event/byte counts, pushed
  from the hot paths (puts by mode, doorbells rung, DMA descriptors);
* :class:`Gauge` — point-in-time values, either pushed (``set``) or
  *pulled* through a bound callable (``bind``), which is how the
  hardware layers' existing lifetime statistics (``dma.completed_bytes``,
  ``doorbell.set_count``, event-heap depth) join the fabric with zero
  per-event overhead;
* :class:`Meter` — a counter with a sliding virtual-time window so
  recent rates ("doorbells/ms over the last 5 ms") are first-class;
* distributions — the registry embeds a
  :class:`~repro.obsv.hist.HistogramRegistry` (the same log-bucketed
  histograms the span scope uses) for latency tails up to p999.

Design rules (the same discipline as spans, docs/METRICS.md):

* **Zero virtual-time cost.**  Instruments only ever *read* ``env.now``;
  none of them schedules events, so a metered run is byte-identical in
  virtual time to an unmetered one.  The one component that does
  schedule — :class:`MetricsTicker`, which samples the registry into
  ring-buffered time series — is opt-in
  (``ShmemConfig(metrics_window_us=...)``) and its sampling events carry
  no callbacks into model state, so model event *times* are unchanged
  even with the ticker running (asserted by the golden test).
* **Process-keyed names.**  Keys are dotted paths rooted at the owning
  component: ``pe0.put.dma``, ``host1.ntb.right.dma.bytes``,
  ``sim.events_dispatched``, ``faults.severs``.  :meth:`scoped` returns
  a prefixing facade so a component never spells its own root twice.
* **Stdlib only.**  The hardware layers import this module; it imports
  nothing above :mod:`repro.obsv.hist`.
"""

from __future__ import annotations

from collections import deque
from fnmatch import fnmatchcase
from typing import Any, Callable, Generator, Iterator, Optional

from .hist import HistogramRegistry


def size_label(nbytes: int) -> str:
    """1024 -> '1KB', 524288 -> '512KB' (the paper's x-axis labels).

    Canonical spelling for size-keyed metric names (``put_us.4KB.1hop``)
    so bench tables, SLO rules and the registry all agree.
    """
    if nbytes % 1024 == 0 and 0 < nbytes < (1 << 20):
        return f"{nbytes // 1024}KB"
    if nbytes % (1 << 20) == 0 and nbytes > 0:
        return f"{nbytes >> 20}MB"
    return f"{nbytes}B"

__all__ = [
    "Counter",
    "Gauge",
    "Meter",
    "TimeSeries",
    "MetricsRegistry",
    "ScopedMetrics",
    "MetricsTicker",
    "wire_cluster_metrics",
    "size_label",
]


class Counter:
    """Monotonically increasing count (optionally with byte accounting)."""

    __slots__ = ("name", "value", "bytes")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.bytes = 0

    def inc(self, n: int = 1, nbytes: int = 0) -> None:
        self.value += n
        self.bytes += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Point-in-time value: pushed with :meth:`set` or pulled via a
    bound callable (:meth:`bind`) at read time.

    Pull gauges are the fabric's bulk wiring mechanism: a component that
    already keeps a lifetime statistic as a plain attribute joins the
    registry with one ``bind`` and pays nothing on its hot path.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def bind(self, fn: Callable[[], float]) -> "Gauge":
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Meter:
    """Counter with a sliding virtual-time rate window.

    ``mark(n)`` records ``n`` events at the current virtual time;
    :meth:`rate` reports events/µs over the trailing ``window_us``.
    The mark log is bounded (``maxlen``) so an unsampled meter cannot
    grow without bound.
    """

    __slots__ = ("name", "env", "count", "_marks", "window_us")

    def __init__(self, name: str, env, window_us: float = 1000.0,
                 maxlen: int = 4096):
        if window_us <= 0:
            raise ValueError(f"window_us must be positive, got {window_us}")
        self.name = name
        self.env = env
        self.count = 0
        self.window_us = window_us
        self._marks: deque[tuple[float, int]] = deque(maxlen=maxlen)

    def mark(self, n: int = 1) -> None:
        self.count += n
        self._marks.append((self.env.now, n))

    def rate(self, window_us: Optional[float] = None) -> float:
        """Marked events per µs over the trailing window."""
        window = self.window_us if window_us is None else window_us
        if window <= 0:
            raise ValueError(f"window_us must be positive, got {window}")
        horizon = self.env.now - window
        marked = sum(n for t, n in self._marks if t >= horizon)
        return marked / window

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Meter {self.name} count={self.count}>"


class TimeSeries:
    """Ring-buffered ``(virtual_time, value)`` samples for one metric."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, maxlen: int = 256):
        self.name = name
        self._samples: deque[tuple[float, float]] = deque(maxlen=maxlen)

    def append(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def samples(self) -> list[tuple[float, float]]:
        return list(self._samples)

    def values(self) -> list[float]:
        return [v for _t, v in self._samples]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name} n={len(self._samples)}>"


class MetricsRegistry:
    """All instruments of one simulation, keyed by dotted path.

    Created unconditionally by :class:`~repro.fabric.cluster.Cluster`
    (``cluster.metrics``) — the fabric is always on; only the ticker
    (time-series sampling) is opt-in.  Instruments are created on first
    use; iteration is sorted for deterministic output.
    """

    def __init__(self, env, series_maxlen: int = 256):
        self.env = env
        self.series_maxlen = series_maxlen
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._meters: dict[str, Meter] = {}
        #: log-bucketed latency/size distributions (p50..p999).
        self.hist = HistogramRegistry()
        self._series: dict[str, TimeSeries] = {}
        #: ticks taken by a MetricsTicker (diagnostics).
        self.samples_taken = 0
        #: cached ``(series.append, value_reader)`` pairs for sample();
        #: rebuilt lazily after any instrument is created.
        self._sample_plan: Optional[list] = None

    # ------------------------------------------------------------ factories
    def counter(self, key: str) -> Counter:
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(key)
            self._sample_plan = None
        return counter

    def gauge(self, key: str) -> Gauge:
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(key)
            self._sample_plan = None
        return gauge

    def meter(self, key: str, window_us: float = 1000.0) -> Meter:
        meter = self._meters.get(key)
        if meter is None:
            meter = self._meters[key] = Meter(key, self.env, window_us)
            self._sample_plan = None
        return meter

    # ---------------------------------------------------------- conveniences
    def inc(self, key: str, n: int = 1, nbytes: int = 0) -> None:
        self.counter(key).inc(n, nbytes)

    def observe(self, key: str, value_us: float) -> None:
        self.hist.observe(key, value_us)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A facade that prefixes every key with ``prefix.``."""
        return ScopedMetrics(self, prefix)

    # ------------------------------------------------------------- resolution
    def value(self, key: str) -> Optional[float]:
        """Resolve ``key`` to its current value (counter > gauge > meter).

        A ``*`` glob sums every matching counter/gauge/meter; an unknown
        key returns ``None`` so callers (the SLO engine) can distinguish
        "zero" from "never registered".
        """
        if "*" in key or "?" in key:
            names = [k for k in self.keys() if fnmatchcase(k, key)]
            if not names:
                return None
            return float(sum(self._resolve_exact(k) or 0.0 for k in names))
        return self._resolve_exact(key)

    def _resolve_exact(self, key: str) -> Optional[float]:
        counter = self._counters.get(key)
        if counter is not None:
            return float(counter.value)
        gauge = self._gauges.get(key)
        if gauge is not None:
            return float(gauge.value)
        meter = self._meters.get(key)
        if meter is not None:
            return float(meter.count)
        return None

    def keys(self) -> list[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._meters))

    def counters(self) -> Iterator[tuple[str, Counter]]:
        for key in sorted(self._counters):
            yield key, self._counters[key]

    def gauges(self) -> Iterator[tuple[str, Gauge]]:
        for key in sorted(self._gauges):
            yield key, self._gauges[key]

    def meters(self) -> Iterator[tuple[str, Meter]]:
        for key in sorted(self._meters):
            yield key, self._meters[key]

    # ------------------------------------------------------------- sampling
    def series(self, key: str) -> TimeSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(
                key, maxlen=self.series_maxlen)
        return series

    def all_series(self) -> Iterator[tuple[str, TimeSeries]]:
        for key in sorted(self._series):
            yield key, self._series[key]

    def _build_sample_plan(self) -> list:
        """Bind each instrument to its series once, not once per tick.

        The plan is a list of ``(series.append, read)`` pairs; it is
        dropped whenever a new instrument is created and rebuilt on the
        next :meth:`sample`, so a tick costs one callable pair per
        instrument with no key lookups.
        """
        plan: list = []
        for key, counter in self._counters.items():
            plan.append((self.series(key).append,
                         lambda c=counter: float(c.value)))
        for key, gauge in self._gauges.items():
            plan.append((self.series(key).append,
                         lambda g=gauge: float(g.value)))
        for key, meter in self._meters.items():
            plan.append((self.series(key).append,
                         lambda m=meter: m.rate()))
        self._sample_plan = plan
        return plan

    def sample(self) -> None:
        """Append every instrument's current value to its time series.

        Called by the ticker at virtual-time intervals; reads only —
        never schedules — so sampling cannot perturb model state.
        """
        plan = self._sample_plan
        if plan is None:
            plan = self._build_sample_plan()
        now = self.env.now
        for append, read in plan:
            append(now, read())
        self.samples_taken += 1

    # --------------------------------------------------------------- export
    def snapshot(self) -> dict[str, float]:
        """Flat ``{key: value}`` of every counter/gauge/meter."""
        out: dict[str, float] = {}
        for key, counter in self.counters():
            out[key] = float(counter.value)
            if counter.bytes:
                out[f"{key}:bytes"] = float(counter.bytes)
        for key, gauge in self.gauges():
            out[key] = float(gauge.value)
        for key, meter in self.meters():
            out[key] = float(meter.count)
        return out

    def to_json(self) -> dict[str, Any]:
        """JSON-ready snapshot: values, histogram summaries, time series."""
        hists: dict[str, Any] = {}
        for key, hist in self.hist.items():
            s = hist.summary()
            hists[key] = {
                "count": s.count, "mean": s.mean, "p50": s.p50,
                "p90": s.p90, "p99": s.p99, "p999": s.p999,
                "min": s.minimum, "max": s.maximum,
            }
        return {
            "schema": "repro-metrics/v1",
            "now_us": self.env.now,
            "metrics": self.snapshot(),
            "histograms": hists,
            "series": {
                key: [[t, v] for t, v in series.samples()]
                for key, series in self.all_series()
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (one family per instrument)."""
        lines: list[str] = []

        def _name(key: str) -> str:
            cleaned = "".join(
                c if c.isalnum() or c == "_" else "_" for c in key)
            if cleaned and cleaned[0].isdigit():
                cleaned = "_" + cleaned
            return f"repro_{cleaned}"

        for key, counter in self.counters():
            name = _name(key)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value}")
            if counter.bytes:
                lines.append(f"# TYPE {name}_bytes counter")
                lines.append(f"{name}_bytes {counter.bytes}")
        for key, gauge in self.gauges():
            name = _name(key)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {gauge.value}")
        for key, meter in self.meters():
            name = _name(key)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {meter.count}")
        for key, hist in self.hist.items():
            name = _name(key)
            s = hist.summary()
            lines.append(f"# TYPE {name} summary")
            for q, value in (("0.5", s.p50), ("0.9", s.p90),
                             ("0.99", s.p99), ("0.999", s.p999)):
                lines.append(f'{name}{{quantile="{q}"}} {value}')
            lines.append(f"{name}_sum {hist.total}")
            lines.append(f"{name}_count {s.count}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} meters={len(self._meters)} "
                f"hists={len(self.hist)}>")


class ScopedMetrics:
    """Key-prefixing facade over a registry (``pe0.`` + ``put.dma``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, key: str) -> Counter:
        return self._registry.counter(self._prefix + key)

    def gauge(self, key: str) -> Gauge:
        return self._registry.gauge(self._prefix + key)

    def meter(self, key: str, window_us: float = 1000.0) -> Meter:
        return self._registry.meter(self._prefix + key, window_us)

    def inc(self, key: str, n: int = 1, nbytes: int = 0) -> None:
        self._registry.inc(self._prefix + key, n, nbytes)

    def observe(self, key: str, value_us: float) -> None:
        self._registry.observe(self._prefix + key, value_us)


class MetricsTicker:
    """Virtual-time sampler: snapshots the registry every ``period_us``.

    The tick process only reads instrument values — it never touches
    model state — so model event *times* are unchanged by sampling (the
    golden test pins this).  The ticker must be stopped (or the run
    bounded by a horizon) for quiescence-style ``env.run()`` calls to
    terminate; :meth:`~repro.core.runtime.ShmemRuntime.finalize` stops
    the cluster's ticker automatically.
    """

    def __init__(self, env, registry: MetricsRegistry, period_us: float):
        if period_us <= 0:
            raise ValueError(f"period_us must be positive, got {period_us}")
        self.env = env
        self.registry = registry
        self.period_us = period_us
        self._proc = None
        self._stopping = False

    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            return
        self._stopping = False
        self._proc = self.env.process(self._run(), name="metrics.ticker")

    def stop(self) -> None:
        """Stop ticking; takes effect at the next tick boundary."""
        self._stopping = True

    @property
    def is_running(self) -> bool:
        return (self._proc is not None and self._proc.is_alive
                and not self._stopping)

    def _run(self) -> Generator:
        while not self._stopping:
            yield self.env.timeout(self.period_us)
            if self._stopping:
                return
            self.registry.sample()


def wire_cluster_metrics(cluster) -> MetricsRegistry:
    """Bind the hardware layers' lifetime statistics into pull gauges.

    Duck-typed like :func:`~repro.obsv.spans.instrument_cluster`: the
    cluster builder calls this once after cabling, so every run — tests,
    benches, examples — has the fabric live without opting in.  All the
    wiring here is pull (``Gauge.bind``): the hot paths keep their plain
    integer statistics and pay nothing extra.
    """
    registry: MetricsRegistry = cluster.metrics
    env = cluster.env
    # -- sim kernel ---------------------------------------------------------
    registry.gauge("sim.events_scheduled").bind(
        lambda: env.scheduled_events)
    registry.gauge("sim.events_dispatched").bind(
        lambda: env.dispatched_events)
    registry.gauge("sim.heap_depth").bind(lambda: len(env._queue))
    registry.gauge("sim.slab_reused").bind(lambda: env.slab_reused)
    registry.gauge("sim.slab_recycled").bind(lambda: env.slab_recycled)
    # -- NTB drivers / DMA / doorbells --------------------------------------
    for (_host_id, _side), driver in sorted(cluster._drivers.items()):
        endpoint = driver.endpoint
        scoped = registry.scoped(endpoint.name)
        dma = endpoint.dma
        scoped.gauge("dma.requests").bind(
            lambda d=dma: d.completed_requests)
        scoped.gauge("dma.bytes").bind(lambda d=dma: d.completed_bytes)
        scoped.gauge("dma.failed").bind(lambda d=dma: d.failed_requests)
        scoped.gauge("dma.descriptors").bind(
            lambda d=dma: d.descriptors_processed)
        scoped.gauge("dma.descriptors_chained").bind(
            lambda d=dma: d.descriptors_chained)
        scoped.gauge("dma.queue_depth").bind(lambda d=dma: d.queue_depth)
        doorbell = endpoint.doorbell
        scoped.gauge("db.rung").bind(lambda r=doorbell: r.set_count)
        scoped.gauge("db.irqs").bind(lambda r=doorbell: r.interrupt_count)
        scoped.gauge("db.dropped").bind(
            lambda e=endpoint: e.dropped_doorbells)
        scoped.gauge("pio.master_aborts").bind(
            lambda d=driver: d.master_aborts)
    # -- PCIe cables --------------------------------------------------------
    for _key, cable in sorted(cluster.cables.items()):
        for link in (cable.a_to_b, cable.b_to_a):
            scoped = registry.scoped(link.name)
            scoped.gauge("bytes").bind(lambda li=link: li.payload_bytes)
            scoped.gauge("dropped_bytes").bind(
                lambda li=link: li.dropped_bytes)
    return registry
