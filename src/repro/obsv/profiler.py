"""Wall-clock profiler for the DES kernel itself (ROADMAP item 4).

Everything else in :mod:`repro.obsv` measures *virtual* time; this module
measures how fast the simulator chews through events on the *host* CPU —
the figure that decides whether a 64-host chaos run fits in CI.  It is
the one sanctioned wall-clock reader inside ``repro.*`` (the determinism
lint exempts exactly this file), and it never feeds wall-clock values
back into the simulation: attribution is written to plain host-side
dicts, so an installed profiler cannot perturb virtual time.

Mechanism: :class:`DesProfiler` registers a hook on
``Environment.step_hooks``, which the kernel calls once per dispatched
event *before* callbacks run.  The wall-clock delta between consecutive
hook firings is therefore the cost of processing the *previous* event —
its callbacks, process resumptions and any synchronous model code — and
is attributed to that event's type and (for processes) name prefix.

Usage::

    profiler = DesProfiler(cluster.env)
    profiler.install()
    ... run ...
    profiler.uninstall()
    print(profiler.report())
    figures = profiler.to_json()   # events/sec for BENCH_PR7.json
"""

from __future__ import annotations

import time
from typing import Any, Optional

__all__ = ["DesProfiler", "Stopwatch"]

_perf = time.perf_counter


class Stopwatch:
    """Plain wall-clock interval reader for bench harnesses.

    Unlike :class:`DesProfiler` this installs **no** dispatch hook, so the
    measured loop runs untaxed — the right tool when the *kernel itself*
    is the benchmark subject (``repro.bench.experiments.kernel``) and the
    per-event attribution hook would dominate what it measures.  Lives in
    this module because it is the determinism lint's one sanctioned
    wall-clock reader.
    """

    __slots__ = ("_started", "_stopped")

    def __init__(self) -> None:
        self._started: Optional[float] = None
        self._stopped: Optional[float] = None

    def start(self) -> "Stopwatch":
        self._started = _perf()
        self._stopped = None
        return self

    def stop(self) -> float:
        self._stopped = _perf()
        return self.seconds

    @property
    def seconds(self) -> float:
        if self._started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else _perf()
        return end - self._started

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

#: Marker in the type-key cache: this type's key is derived per instance
#: (Process events are keyed by their name family, not their class).
_BY_NAME = object()


class DesProfiler:
    """Per-event-type wall-clock attribution over the dispatch loop.

    The hook itself is on the measured path, so it is kept to one
    ``perf_counter`` read and a handful of dict operations per event:
    event keys are interned through two caches (per event *class*, and
    per Process *name* — the string splits that collapse
    ``"pe0.put_nbi:3"`` to its family run once per distinct name, not
    once per event).
    """

    def __init__(self, env):
        self.env = env
        #: event-type name -> dispatched count.
        self.event_counts: dict[str, int] = {}
        #: event-type name -> attributed wall-clock seconds.
        self.event_seconds: dict[str, float] = {}
        self.events = 0
        self._installed = False
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._last_stamp: Optional[float] = None
        self._last_key: Optional[str] = None
        #: event class -> interned key (or _BY_NAME for Process).
        self._type_keys: dict[type, Any] = {}
        #: process name -> interned family key.
        self._name_keys: dict[str, str] = {}

    # ------------------------------------------------------------- control
    def install(self) -> None:
        """Hook the kernel's dispatch loop; idempotent."""
        if self._installed:
            return
        self.env.step_hooks.append(self._on_step)
        self._installed = True
        self._started_at = time.perf_counter()
        self._last_stamp = self._started_at
        self._last_key = None

    def uninstall(self) -> None:
        """Unhook and close the last attribution window; idempotent."""
        if not self._installed:
            return
        self._stopped_at = time.perf_counter()
        self._flush(self._stopped_at)
        try:
            self.env.step_hooks.remove(self._on_step)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._installed = False

    # ---------------------------------------------------------------- hook
    def _on_step(self, env, event) -> None:
        now = _perf()
        last = self._last_key
        if last is not None:
            seconds = self.event_seconds
            seconds[last] = seconds.get(last, 0.0) + (now - self._last_stamp)
        cls = event.__class__
        key = self._type_keys.get(cls)
        if key is None:
            key = cls.__name__
            self._type_keys[cls] = _BY_NAME if key == "Process" else key
            if key == "Process":
                key = _BY_NAME
        if key is _BY_NAME:
            name = getattr(event, "name", "")
            key = self._name_keys.get(name)
            if key is None:
                # Collapse per-instance names ("pe0.put_nbi", "dma.ch0")
                # to their family so the table stays readable at scale.
                key = f"Process:{name.split('.', 1)[-1].split(':', 1)[0]}" \
                    if name else "Process"
                self._name_keys[name] = key
        self.events += 1
        counts = self.event_counts
        counts[key] = counts.get(key, 0) + 1
        self._last_stamp = now
        self._last_key = key

    def _flush(self, now: float) -> None:
        """Attribute the elapsed window to the previous event's key."""
        if self._last_key is not None and self._last_stamp is not None:
            self.event_seconds[self._last_key] = (
                self.event_seconds.get(self._last_key, 0.0)
                + (now - self._last_stamp)
            )
        self._last_key = None

    # -------------------------------------------------------------- results
    @property
    def wall_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        end = self._stopped_at if self._stopped_at is not None \
            else time.perf_counter()
        return end - self._started_at

    @property
    def events_per_sec(self) -> float:
        wall = self.wall_seconds
        return self.events / wall if wall > 0 else 0.0

    def report(self, top: int = 15) -> str:
        """Fixed-width table: per-event-type counts and wall-clock share."""
        total_s = sum(self.event_seconds.values()) or 1e-12
        rows = sorted(self.event_seconds.items(),
                      key=lambda kv: kv[1], reverse=True)[:top]
        width = max([24] + [len(k) for k, _ in rows])
        lines = [
            f"DES profile: {self.events} events in {self.wall_seconds:.3f} s "
            f"({self.events_per_sec:,.0f} events/sec)",
            f"{'event type':<{width}} {'count':>9} {'wall_ms':>10} "
            f"{'share':>7}",
        ]
        lines.append("-" * len(lines[1]))
        for key, seconds in rows:
            lines.append(
                f"{key:<{width}} {self.event_counts.get(key, 0):>9} "
                f"{seconds * 1e3:>10.2f} {seconds / total_s:>6.1%}"
            )
        if not rows:
            lines.append("  (no events dispatched)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "wall_s": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "by_type": {
                key: {
                    "count": self.event_counts.get(key, 0),
                    "wall_s": seconds,
                }
                for key, seconds in sorted(self.event_seconds.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DesProfiler events={self.events} "
                f"installed={self._installed}>")
