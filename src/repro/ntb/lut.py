"""NTB requester-ID Look-Up Table (LUT).

§III-B.1 of the paper: device setup includes "write/read ID setup for LUT
entry mapping for NTB device identification".  On PEX87xx parts the LUT
maps requester IDs from the far side of the bridge onto local IDs so that
completions and DMA traffic are attributable to the correct source.

The reproduction uses the LUT for exactly that: each host registers its
host-ID with both of its NTB ports during ``shmem_init``, and the data path
validates that incoming transfers carry a requester ID that has a LUT entry
— an unconfigured link faults instead of silently passing traffic.
"""

from __future__ import annotations

__all__ = ["LutError", "LookupTable"]

DEFAULT_LUT_ENTRIES = 32


class LutError(Exception):
    """LUT full, duplicate entry, or lookup miss."""


class LookupTable:
    """Fixed-capacity requester-ID translation table."""

    def __init__(self, capacity: int = DEFAULT_LUT_ENTRIES, name: str = "lut"):
        if capacity < 1:
            raise LutError(f"LUT capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: dict[int, int] = {}  # remote requester id -> local id

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, remote_id: int, local_id: int) -> None:
        if remote_id in self._entries:
            if self._entries[remote_id] == local_id:
                return  # idempotent re-registration
            raise LutError(
                f"{self.name}: requester {remote_id:#x} already mapped to "
                f"{self._entries[remote_id]:#x}"
            )
        if len(self._entries) >= self.capacity:
            raise LutError(f"{self.name}: table full ({self.capacity} entries)")
        self._entries[remote_id] = local_id

    def remove(self, remote_id: int) -> None:
        if remote_id not in self._entries:
            raise LutError(f"{self.name}: no entry for requester {remote_id:#x}")
        del self._entries[remote_id]

    def lookup(self, remote_id: int) -> int:
        try:
            return self._entries[remote_id]
        except KeyError:
            raise LutError(
                f"{self.name}: lookup miss for requester {remote_id:#x} "
                "(link not configured?)"
            ) from None

    def contains(self, remote_id: int) -> bool:
        return remote_id in self._entries

    def entries(self) -> dict[int, int]:
        return dict(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LookupTable {self.name} {len(self._entries)}/{self.capacity}>"
