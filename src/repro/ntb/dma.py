"""NTB DMA engine: descriptor-ring RDMA transfers across the bridge.

The PEX8749 exposes DMA channels that move data between local memory and
the peer's memory window without CPU involvement (§III-A: "The data can be
written with RDMA supported by NTB RDMA interface, or directly with a
memcpy operation").

Model
-----
One engine per NTB endpoint, one channel (the paper uses a single channel
per adapter).  A transfer is described by a scatter/gather list of local
physical segments plus a target window offset; the engine process pulls
requests from a descriptor ring (bounded :class:`~repro.sim.Store`) and,
per request:

1. charges ``setup_time_us`` (driver programming + engine start);
2. for each SG segment: charges ``per_descriptor_us`` (descriptor fetch and
   processing — **this is the term that caps OpenSHMEM Put throughput for
   paged memory**, DESIGN.md §5), then pumps the payload through a
   three-stage pipeline (source memory port → PCIe link → destination
   memory port) in ``pipeline_chunk`` pieces;
3. triggers the request's completion event (and an optional completion
   callback used for interrupt-on-completion).

Reads (``DmaDirection.READ``) traverse the link in the opposite direction
and pay an extra request round trip per segment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence

from ..memory import PhysSegment, PhysicalMemory
from ..obsv.spans import NULL_SCOPE
from ..pcie import Link
from ..sim import BandwidthServer, Environment, Event, Store, Tracer

__all__ = ["DmaConfig", "DmaDirection", "DmaRequest", "DmaEngine",
           "LinkDownError"]


class LinkDownError(Exception):
    """The cable died mid-transfer; the engine reports it per request."""


class DmaDirection(enum.Enum):
    """Transfer direction relative to the engine's local host."""

    WRITE = "write"  # local memory -> peer memory (through the window)
    READ = "read"    # peer memory -> local memory


@dataclass(frozen=True)
class DmaConfig:
    """Engine timing/shape parameters (defaults calibrated per DESIGN.md §5).

    Attributes
    ----------
    setup_time_us:
        Per-request programming cost (ring doorbell, channel start).
    per_descriptor_us:
        Per-SG-segment descriptor fetch/processing cost.  Paged user memory
        produces one segment per 4 KiB page, so this term dominates large
        transfers from non-pinned buffers.
    engine_rate_mbps:
        Engine pump ceiling; PEX87xx engines sustain well below wire rate.
    pipeline_chunk:
        Chunk size for the fluid pipeline approximation.
    ring_entries:
        Descriptor ring capacity; submissions beyond it block.
    completion_latency_us:
        Writeback delay from last byte to completion visibility.
    read_roundtrip_us:
        Extra per-segment latency for READ (non-posted request + completion).
    """

    setup_time_us: float = 20.0
    per_descriptor_us: float = 9.0
    engine_rate_mbps: float = 2900.0
    pipeline_chunk: int = 16 * 1024
    ring_entries: int = 256
    completion_latency_us: float = 2.0
    read_roundtrip_us: float = 3.0
    #: Independent DMA channels (PEX8749 exposes four).  Channels pull
    #: from one shared ring and overlap *different* requests; the pump
    #: bandwidth ceiling is shared, so channels help per-request overheads
    #: (setup, descriptor walks), not peak rate.
    channels: int = 1

    def __post_init__(self) -> None:
        if self.setup_time_us < 0 or self.per_descriptor_us < 0:
            raise ValueError("negative DMA timing parameter")
        if self.engine_rate_mbps <= 0:
            raise ValueError("engine rate must be positive")
        if self.pipeline_chunk < 512:
            raise ValueError("pipeline chunk unreasonably small")
        if self.ring_entries < 1:
            raise ValueError("descriptor ring needs at least one entry")
        if not (1 <= self.channels <= 8):
            raise ValueError("channels must be in 1..8")


@dataclass
class DmaRequest:
    """One queued transfer.

    ``segments`` are *local* physical extents (source for WRITE, destination
    for READ); ``window_offset`` addresses the peer side through the given
    outgoing window.  ``done`` triggers with the request once all bytes are
    visible at the destination.
    """

    direction: DmaDirection
    window_index: int
    window_offset: int
    segments: tuple[PhysSegment, ...]
    done: Event
    on_complete: Optional[Callable[["DmaRequest"], None]] = None
    submitted_at: float = 0.0
    completed_at: float = field(default=0.0)
    #: submitter's span at submit time — the engine-side span's parent.
    ctx_span: Optional[int] = None
    #: chained-descriptor mode: the engine prefetches descriptor *i+1*
    #: while segment *i* streams, so only the first segment pays the full
    #: ``per_descriptor_us``; later segments pay only the portion not
    #: hidden behind the previous segment's pump time.
    chained: bool = False

    @property
    def nbytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)


class DmaEngine:
    """The engine itself: a sim process consuming a descriptor ring.

    The engine is wired to its endpoint lazily (:meth:`attach`) because
    endpoints learn their peer only when cabled.
    """

    def __init__(self, env: Environment, config: DmaConfig,
                 name: str = "dma", tracer: Optional[Tracer] = None):
        self.env = env
        self.config = config
        self.name = name
        self.tracer = tracer
        self._ring: Store[DmaRequest] = Store(
            env, capacity=config.ring_entries, name=f"{name}.ring"
        )
        self._pump = BandwidthServer(
            env, config.engine_rate_mbps, name=f"{name}.pump"
        )
        #: observability sink; replaced by instrument_cluster when tracing.
        self.scope = NULL_SCOPE
        # Wired by attach():
        self._local_memory: Optional[PhysicalMemory] = None
        self._local_port: Optional[BandwidthServer] = None
        self._resolve: Optional[Callable[[int, int, int],
                                         tuple[PhysicalMemory, int,
                                               BandwidthServer]]] = None
        self._link_out: Optional[Link] = None
        self._link_in: Optional[Link] = None
        self._workers: list = []
        #: lifetime statistics
        self.completed_requests = 0
        self.completed_bytes = 0
        self.failed_requests = 0
        self.descriptors_processed = 0
        self.descriptors_chained = 0

    # -- wiring -------------------------------------------------------------------
    def attach(self, local_memory: PhysicalMemory,
               local_port: BandwidthServer,
               resolve: Callable[[int, int, int],
                                 tuple[PhysicalMemory, int, BandwidthServer]],
               link_out: Link, link_in: Link) -> None:
        """Connect the engine to its endpoint's address-resolution fabric.

        ``resolve(window_index, window_offset, nbytes)`` must return the
        peer's ``(memory, physical_address, memory_port)`` triple after
        window limit checks.
        """
        self._local_memory = local_memory
        self._local_port = local_port
        self._resolve = resolve
        self._link_out = link_out
        self._link_in = link_in
        if not self._workers:
            self._workers = [
                self.env.process(self._run(), name=f"{self.name}.ch{index}")
                for index in range(self.config.channels)
            ]

    @property
    def is_attached(self) -> bool:
        return self._resolve is not None

    @property
    def queue_depth(self) -> int:
        return len(self._ring)

    # -- submission ------------------------------------------------------------------
    def submit(self, direction: DmaDirection, window_index: int,
               window_offset: int, segments: Sequence[PhysSegment],
               on_complete: Optional[Callable[[DmaRequest], None]] = None,
               chained: bool = False) -> DmaRequest:
        """Queue a transfer; returns the request whose ``done`` event fires
        at completion.  Raises if the engine is not attached."""
        if not self.is_attached:
            raise RuntimeError(f"{self.name}: submit before attach/connect")
        if not segments:
            raise ValueError(f"{self.name}: empty scatter/gather list")
        request = DmaRequest(
            direction=direction,
            window_index=window_index,
            window_offset=window_offset,
            segments=tuple(segments),
            done=self.env.event(),
            on_complete=on_complete,
            submitted_at=self.env.now,
            # submit() runs synchronously in the submitter's process, so
            # this captures the causally-enclosing span (payload_write).
            ctx_span=self.scope.current_span_id(),
            chained=chained,
        )
        self._ring.put(request)
        return request

    # -- engine process -----------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            request: DmaRequest = yield self._ring.get()
            with self.scope.span("dma", category="dma", track=self.name,
                                 parent=request.ctx_span,
                                 nbytes=request.nbytes,
                                 segments=len(request.segments),
                                 direction=request.direction.value):
                yield self.env.timeout(self.config.setup_time_us)
                try:
                    if request.direction is DmaDirection.WRITE:
                        yield from self._do_write(request)
                    else:
                        yield from self._do_read(request)
                except LinkDownError as exc:
                    # Engine error status: fail this request, keep serving
                    # the ring (a dead cable must not wedge the channel).
                    self.failed_requests += 1
                    request.done.fail(exc)
                    continue
                yield self.env.timeout(self.config.completion_latency_us)
            request.completed_at = self.env.now
            self.completed_requests += 1
            self.completed_bytes += request.nbytes
            if self.tracer is not None:
                self.tracer.count(f"{self.name}.requests", nbytes=request.nbytes)
                self.tracer.observe(
                    f"{self.name}.latency",
                    request.completed_at - request.submitted_at,
                )
            if request.on_complete is not None:
                request.on_complete(request)
            request.done.succeed(request)

    def _descriptor_delay(self, request: DmaRequest,
                          fetch_started: Optional[float]) -> float:
        """Exposed descriptor-fetch cost for the next segment.

        Unchained rings fetch each descriptor on demand (full cost).  A
        chained ring starts fetching descriptor *i+1* the moment segment
        *i* begins streaming (``fetch_started``), so only the remainder
        not hidden behind the stream is exposed.
        """
        if not request.chained or fetch_started is None:
            return self.config.per_descriptor_us
        elapsed = self.env.now - fetch_started
        return max(0.0, self.config.per_descriptor_us - elapsed)

    def _charge_descriptor(self, request: DmaRequest,
                           fetch_started: Optional[float],
                           extra: float = 0.0) -> Generator:
        """Charge the (possibly prefetch-hidden) descriptor cost.

        Unchained requests always yield the timeout — even a zero-cost one
        — preserving the pre-chaining event interleaving exactly.
        """
        delay = self._descriptor_delay(request, fetch_started) + extra
        self.descriptors_processed += 1
        if request.chained and fetch_started is not None:
            self.descriptors_chained += 1
        if not request.chained or delay > 0:
            yield self.env.timeout(delay)

    def _do_write(self, request: DmaRequest) -> Generator:
        """local segments -> peer memory at window_offset (gathered)."""
        assert self._resolve is not None
        dst_mem, dst_phys, dst_port = self._resolve(
            request.window_index, request.window_offset, request.nbytes
        )
        cursor = dst_phys
        fetch_started: Optional[float] = None
        for segment in request.segments:
            yield from self._charge_descriptor(request, fetch_started)
            fetch_started = self.env.now
            yield from self._pump_segment(
                src_mem=self._local_memory, src_addr=segment.phys_addr,
                src_port=self._local_port,
                dst_mem=dst_mem, dst_addr=cursor, dst_port=dst_port,
                nbytes=segment.nbytes, link=self._link_out,
            )
            cursor += segment.nbytes

    def _do_read(self, request: DmaRequest) -> Generator:
        """peer memory at window_offset -> local segments (scattered)."""
        assert self._resolve is not None
        src_mem, src_phys, src_port = self._resolve(
            request.window_index, request.window_offset, request.nbytes
        )
        cursor = src_phys
        fetch_started: Optional[float] = None
        for segment in request.segments:
            # The read round trip is non-posted and cannot be prefetched.
            yield from self._charge_descriptor(
                request, fetch_started, extra=self.config.read_roundtrip_us
            )
            fetch_started = self.env.now
            yield from self._pump_segment(
                src_mem=src_mem, src_addr=cursor, src_port=src_port,
                dst_mem=self._local_memory, dst_addr=segment.phys_addr,
                dst_port=self._local_port,
                nbytes=segment.nbytes, link=self._link_in,
            )
            cursor += segment.nbytes

    def _pump_segment(self, src_mem: PhysicalMemory, src_addr: int,
                      src_port: BandwidthServer,
                      dst_mem: PhysicalMemory, dst_addr: int,
                      dst_port: BandwidthServer,
                      nbytes: int, link: Link) -> Generator:
        """Three-stage fluid pipeline: src port || link || dst port.

        Each chunk occupies the three stages concurrently (AllOf), so the
        chunk time is the *maximum* of the stage times including queueing —
        the standard fluid approximation for a pipelined DMA stream.  The
        engine's own pump ceiling is applied as a fourth concurrent stage.
        """
        chunk_size = self.config.pipeline_chunk
        if link.config.propagation_delay_us:
            yield self.env.timeout(link.config.propagation_delay_us)
        offset = 0
        while offset < nbytes:
            if link.down:
                raise LinkDownError(
                    f"{self.name}: link went down after {offset}/{nbytes} "
                    "bytes"
                )
            take = min(chunk_size, nbytes - offset)
            # Stage names carry the owning component so schedule analysis
            # can attribute each resumption (ports belong to their host,
            # the wire and pump stages to this engine's host).
            stages = [
                self.env.process(src_port.hold(take),
                                 name=f"{src_port.name}.hold"),
                self.env.process(link.transfer(take, propagate=False),
                                 name=f"{self.name}.wire"),
                self.env.process(dst_port.hold(take),
                                 name=f"{dst_port.name}.hold"),
                self.env.process(self._pump.hold(take),
                                 name=f"{self._pump.name}.hold"),
            ]
            # Parent the wire-occupancy span (opened inside the spawned
            # link stage) under this request's engine span.
            self.scope.bind_process(stages[1], self.scope.current_span_id())
            yield self.env.all_of(stages)
            # Realize the bytes only after the full pipeline completed so a
            # concurrent reader cannot observe data "ahead of time".
            dst_mem.write(
                dst_addr + offset, src_mem.view(src_addr + offset, take)
            )
            offset += take

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DmaEngine {self.name} queued={self.queue_depth} "
            f"done={self.completed_requests}>"
        )
