"""NTB BAR translation windows (paper Fig. 1).

An NTB port exposes memory windows through BARs in its Type-0 header.  The
*local* side programs, per window, a **translation address** and **limit**
into the bridge: TLPs arriving from the peer that hit the peer's outgoing
BAR are redirected into local physical memory at
``translation_address + offset`` as long as ``offset < translation_size``.

The model separates the two halves exactly like hardware does:

* :class:`OutgoingWindow` — the local view ("writes into my BAR k go to the
  peer"); owns no translation state, only the BAR aperture.
* :class:`IncomingTranslation` — the registers the *local* driver programs
  so that traffic arriving on window k lands in local DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..memory import AccessFault, PhysicalMemory
from ..pcie import BarKind, BarRegister

__all__ = ["WindowError", "IncomingTranslation", "OutgoingWindow"]


class WindowError(Exception):
    """Bad window programming or out-of-window access."""


@dataclass
class IncomingTranslation:
    """Translation registers for one incoming window.

    ``translation_address``/``translation_size`` correspond to the
    "Translation Address" / "Translation Size" registers of Fig. 1; the
    window is disabled until :meth:`program` is called.
    """

    window_index: int
    translation_address: int = 0
    translation_size: int = 0
    enabled: bool = False

    def program(self, address: int, size: int) -> None:
        if size <= 0:
            raise WindowError(
                f"window {self.window_index}: translation size must be > 0"
            )
        if address < 0:
            raise WindowError(
                f"window {self.window_index}: negative translation address"
            )
        self.translation_address = address
        self.translation_size = size
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.translation_address = 0
        self.translation_size = 0

    def translate(self, offset: int, nbytes: int) -> int:
        """Map a window offset to a local physical address (bounds-checked)."""
        if not self.enabled:
            raise WindowError(
                f"window {self.window_index}: access while translation disabled"
            )
        if offset < 0 or nbytes < 0 or offset + nbytes > self.translation_size:
            raise WindowError(
                f"window {self.window_index}: access [{offset:#x}, "
                f"{offset + nbytes:#x}) beyond limit {self.translation_size:#x}"
            )
        return self.translation_address + offset


class OutgoingWindow:
    """The local aperture of one NTB memory window.

    Writes/reads at ``offset`` within the aperture are forwarded across the
    link and resolved by the *peer's* :class:`IncomingTranslation` with the
    same window index.  The aperture size comes from the underlying BAR.
    """

    def __init__(self, window_index: int, bar: BarRegister):
        if bar.kind not in (BarKind.MEM32, BarKind.MEM64):
            raise WindowError(
                f"window {window_index}: BAR{bar.index} is not a memory BAR"
            )
        self.window_index = window_index
        self.bar = bar

    @property
    def size(self) -> int:
        return self.bar.size

    def check_access(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise WindowError(
                f"window {self.window_index}: access [{offset:#x}, "
                f"{offset + nbytes:#x}) outside {self.size:#x}-byte aperture"
            )

    def resolve(self, peer_translation: IncomingTranslation,
                peer_memory: PhysicalMemory, offset: int,
                nbytes: int) -> int:
        """Full end-to-end address resolution used by the data path."""
        self.check_access(offset, nbytes)
        phys = peer_translation.translate(offset, nbytes)
        if phys + nbytes > peer_memory.size:
            raise AccessFault(
                f"window {self.window_index}: translated address "
                f"{phys:#x}+{nbytes:#x} outside peer memory"
            )
        return phys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OutgoingWindow {self.window_index} size={self.size:#x}>"
