"""The NTB endpoint: one port of a switchless PCIe NTB connection.

An :class:`NtbEndpoint` models one PEX87xx-style NTB host adapter port.  It
aggregates:

* a Type-0 config header with six BAR slots (BAR0 = register space, two
  64-bit memory windows at BAR2/BAR4 — the paper uses one data window per
  port plus a bypass/transfer window, §III-A/Fig. 4);
* per-window :class:`~repro.ntb.bar.IncomingTranslation` registers
  programmed by the local driver;
* the shared :class:`~repro.ntb.scratchpad.ScratchpadFile` of the link;
* a local :class:`~repro.ntb.doorbell.DoorbellRegister` the peer can latch;
* a requester-ID :class:`~repro.ntb.lut.LookupTable`;
* a :class:`~repro.ntb.dma.DmaEngine`.

Endpoints become functional in two steps mirroring real bring-up:
``attach_host`` (adapter seated in a host: gains memory + memory-port +
requester id) and then :func:`connect` (cable plugged between two endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..memory import PhysSegment, PhysicalMemory
from ..pcie import (
    BarKind,
    BarRegister,
    ConfigSpace,
    DuplexLink,
    Link,
    LinkConfig,
    Type0Header,
)
from ..sim import BandwidthServer, Environment, Tracer
from .bar import IncomingTranslation, OutgoingWindow, WindowError
from .dma import DmaConfig, DmaDirection, DmaEngine, DmaRequest
from .doorbell import DoorbellRegister
from .lut import LookupTable, LutError
from .scratchpad import TOTAL_SCRATCHPADS, ScratchpadFile

__all__ = ["NtbPortConfig", "NtbEndpoint", "connect_endpoints", "NtbError"]

PLX_VENDOR_ID = 0x10B5
PEX8749_DEVICE_ID = 0x8749

#: Window roles used throughout the OpenSHMEM runtime.
DATA_WINDOW = 0
BYPASS_WINDOW = 1


class NtbError(Exception):
    """Endpoint used before attach/connect, or wiring mistakes."""


@dataclass(frozen=True)
class NtbPortConfig:
    """Static shape of one NTB port."""

    window_sizes: tuple[int, ...] = (64 * 1024 * 1024, 4 * 1024 * 1024)
    vendor_id: int = PLX_VENDOR_ID
    device_id: int = PEX8749_DEVICE_ID
    dma: DmaConfig = field(default_factory=DmaConfig)
    #: MMIO write time for doorbell/scratchpad registers, charged by driver.
    register_space_size: int = 64 * 1024

    def __post_init__(self) -> None:
        if not self.window_sizes:
            raise ValueError("an NTB port needs at least one memory window")
        for size in self.window_sizes:
            if size < 4096 or size & (size - 1):
                raise ValueError(
                    f"window sizes must be powers of two >= 4096, got {size}"
                )
        if len(self.window_sizes) > 2:
            raise ValueError("Type-0 header fits at most two 64-bit windows")


class NtbEndpoint:
    """One NTB port with its registers, windows, DMA engine and link."""

    def __init__(self, env: Environment, name: str,
                 config: Optional[NtbPortConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.name = name
        self.config = config or NtbPortConfig()
        self.tracer = tracer

        bars = [BarRegister(0, BarKind.MEM32,
                            size=self.config.register_space_size)]
        # 64-bit windows at BAR2 and BAR4 (each eats two slots).
        for i, size in enumerate(self.config.window_sizes):
            bars.append(
                BarRegister(2 + 2 * i, BarKind.MEM64, size=size,
                            prefetchable=True)
            )
        self.header = Type0Header(
            self.config.vendor_id, self.config.device_id, bars
        )
        self.config_space = ConfigSpace(self.header)

        self.outgoing: list[OutgoingWindow] = [
            OutgoingWindow(i, self.header.bar_by_index(2 + 2 * i))
            for i in range(len(self.config.window_sizes))
        ]
        self.incoming: list[IncomingTranslation] = [
            IncomingTranslation(i) for i in range(len(self.config.window_sizes))
        ]
        self.doorbell = DoorbellRegister(env, name=f"{name}.db")
        #: Fault-injection hook: number of upcoming outbound doorbell
        #: rings to swallow (the MMIO write is charged, the peer latch
        #: never fires).  0 means the hook is inert.
        self.fault_drop_doorbells = 0
        #: rings actually swallowed (accounting for tests/reports)
        self.dropped_doorbells = 0
        self.lut = LookupTable(name=f"{name}.lut")
        self.dma = DmaEngine(env, self.config.dma, name=f"{name}.dma",
                             tracer=tracer)

        # Populated by attach_host():
        self.local_memory: Optional[PhysicalMemory] = None
        self.local_port: Optional[BandwidthServer] = None
        self.requester_id: Optional[int] = None
        # Populated by connect_endpoints():
        self.peer: Optional["NtbEndpoint"] = None
        self.spad: Optional[ScratchpadFile] = None
        self.link_out: Optional[Link] = None
        self.link_in: Optional[Link] = None

    # -- bring-up -------------------------------------------------------------
    def attach_host(self, memory: PhysicalMemory, memory_port: BandwidthServer,
                    requester_id: int) -> None:
        """Seat the adapter in a host (step 1 of bring-up)."""
        if self.local_memory is not None:
            raise NtbError(f"{self.name}: already attached to a host")
        self.local_memory = memory
        self.local_port = memory_port
        self.requester_id = requester_id

    @property
    def is_attached(self) -> bool:
        return self.local_memory is not None

    @property
    def is_connected(self) -> bool:
        return self.peer is not None

    @property
    def link_down(self) -> bool:
        """True when the cable has been severed (or never connected)."""
        if self.link_out is None:
            return True
        return self.link_out.down

    def _require_connected(self) -> "NtbEndpoint":
        if self.peer is None:
            raise NtbError(f"{self.name}: no peer (cable not connected)")
        return self.peer

    # -- translation programming (driver-facing) -------------------------------
    def program_incoming(self, window_index: int, phys_address: int,
                         size: int) -> None:
        """Program the translation registers for one incoming window.

        ``size`` may not exceed the window's BAR aperture (hardware limit
        register), and the target extent must lie inside local DRAM.
        """
        if not self.is_attached:
            raise NtbError(f"{self.name}: program_incoming before attach")
        aperture = self.outgoing[window_index].size
        if size > aperture:
            raise WindowError(
                f"{self.name}: translation size {size:#x} exceeds "
                f"window {window_index} aperture {aperture:#x}"
            )
        assert self.local_memory is not None
        if phys_address + size > self.local_memory.size:
            raise WindowError(
                f"{self.name}: translation target outside local memory"
            )
        self.incoming[window_index].program(phys_address, size)

    def resolve_peer(self, window_index: int, offset: int,
                     nbytes: int) -> tuple[PhysicalMemory, int, BandwidthServer]:
        """Resolve an outgoing access to (peer memory, phys addr, port).

        Enforces: cable connected, peer translation programmed, window
        limits, and a LUT entry for *our* requester id on the peer side
        (i.e. the peer's driver acknowledged this link during setup).
        """
        peer = self._require_connected()
        if self.requester_id is None or not peer.lut.contains(self.requester_id):
            raise LutError(
                f"{self.name}: peer {peer.name} has no LUT entry for "
                f"requester {self.requester_id} — run the ID handshake first"
            )
        assert peer.local_memory is not None and peer.local_port is not None
        window = self.outgoing[window_index]
        phys = window.resolve(
            peer.incoming[window_index], peer.local_memory, offset, nbytes
        )
        return peer.local_memory, phys, peer.local_port

    # -- functional (zero-time) data path; timing charged by callers -------------
    def window_write_functional(self, window_index: int, offset: int,
                                data: bytes | np.ndarray) -> None:
        """Posted write through an outgoing window (no time model here).

        Writes into a severed cable are silently dropped (posted TLPs,
        master-abort semantics)."""
        nbytes = len(data) if isinstance(data, (bytes, bytearray)) else data.size
        if self.link_down:
            return
        memory, phys, _port = self.resolve_peer(window_index, offset, nbytes)
        memory.write(phys, data)
        if self.tracer is not None:
            self.tracer.count(f"{self.name}.pio_write", nbytes=nbytes)

    def window_read_functional(self, window_index: int, offset: int,
                               nbytes: int) -> np.ndarray:
        """Non-posted read through an outgoing window (no time model).

        Reads across a severed cable complete with all-ones — the classic
        PCIe master-abort signature drivers test for."""
        if self.link_down:
            return np.full(nbytes, 0xFF, dtype=np.uint8)
        memory, phys, _port = self.resolve_peer(window_index, offset, nbytes)
        if self.tracer is not None:
            self.tracer.count(f"{self.name}.pio_read", nbytes=nbytes)
        return memory.read(phys, nbytes)

    # -- doorbell / scratchpad ----------------------------------------------------
    def ring_peer_doorbell(self, bit: int):
        """Set a doorbell bit on the peer (process generator).

        The MMIO write is posted; the latch happens one link propagation
        later on the peer side.
        """
        peer = self._require_connected()
        assert self.link_out is not None
        yield from self.link_out.transfer(8)
        if self.link_down:
            return  # the ring was dropped on the floor
        if self.fault_drop_doorbells > 0:
            # Injected single-TLP loss: the write vanished in the fabric.
            self.fault_drop_doorbells -= 1
            self.dropped_doorbells += 1
            return
        peer.doorbell.latch(bit)
        if self.tracer is not None:
            self.tracer.count(f"{self.name}.doorbell_rings")

    def spad_file(self) -> ScratchpadFile:
        if self.spad is None:
            raise NtbError(f"{self.name}: scratchpads exist only once cabled")
        return self.spad

    # -- DMA ------------------------------------------------------------------------
    def dma_write(self, window_index: int, window_offset: int,
                  segments: Sequence[PhysSegment],
                  on_complete: Optional[Callable[[DmaRequest], None]] = None,
                  chained: bool = False) -> DmaRequest:
        """Submit a local-to-peer DMA through a window."""
        return self.dma.submit(DmaDirection.WRITE, window_index,
                               window_offset, segments, on_complete,
                               chained=chained)

    def dma_read(self, window_index: int, window_offset: int,
                 segments: Sequence[PhysSegment],
                 on_complete: Optional[Callable[[DmaRequest], None]] = None,
                 chained: bool = False) -> DmaRequest:
        """Submit a peer-to-local DMA through a window."""
        return self.dma.submit(DmaDirection.READ, window_index,
                               window_offset, segments, on_complete,
                               chained=chained)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        peer = self.peer.name if self.peer else None
        return f"<NtbEndpoint {self.name} peer={peer}>"


def connect_endpoints(a: NtbEndpoint, b: NtbEndpoint,
                      link_config: Optional[LinkConfig] = None,
                      tracer: Optional[Tracer] = None) -> DuplexLink:
    """Plug a PCIe fabric cable between two attached endpoints.

    Creates the duplex link, instantiates the *shared* scratchpad file, and
    attaches both DMA engines to the resolved data path.  Mirrors §III-A:
    "two NTB adapters ... connected to each other [make] an NTB upstream
    and downstream channel, enabling address translation between the two
    hosts".
    """
    if a.env is not b.env:
        raise NtbError("endpoints live in different environments")
    if not a.is_attached or not b.is_attached:
        raise NtbError("attach both endpoints to hosts before cabling")
    if a.is_connected or b.is_connected:
        raise NtbError("an endpoint is already cabled")
    if len(a.outgoing) != len(b.outgoing):
        raise NtbError("endpoints have differing window counts")

    env = a.env
    cable = DuplexLink(env, link_config or LinkConfig(),
                       name=f"{a.name}<->{b.name}", tracer=tracer)
    # Both banks: 0..7 data/mailbox (paper §II-A), 8..15 link management
    # (heartbeat) — so the watchdog never collides with the mailboxes.
    spad = ScratchpadFile(env, name=f"{a.name}|{b.name}.spad",
                          count=TOTAL_SCRATCHPADS)

    a.peer, b.peer = b, a
    a.spad = b.spad = spad
    a.link_out, a.link_in = cable.a_to_b, cable.b_to_a
    b.link_out, b.link_in = cable.b_to_a, cable.a_to_b

    for endpoint in (a, b):
        assert endpoint.local_memory is not None
        assert endpoint.local_port is not None
        assert endpoint.link_out is not None and endpoint.link_in is not None
        endpoint.dma.attach(
            local_memory=endpoint.local_memory,
            local_port=endpoint.local_port,
            resolve=endpoint.resolve_peer,
            link_out=endpoint.link_out,
            link_in=endpoint.link_in,
        )
    return cable
