"""Host-side NTB driver (the analogue of Linux ``ntb_hw_plx`` + transport).

One :class:`NtbDriver` binds one seated :class:`~repro.ntb.device.NtbEndpoint`
to its :class:`~repro.host.Host`.  It performs config-space enumeration the
way a real driver does (vendor probe, BAR sizing, memory/bus-master enable)
and exposes the primitives the OpenSHMEM runtime builds on, each charging
the appropriate :class:`~repro.host.CostModel` cost:

* scratchpad read/write (MMIO register timing),
* doorbell ring/clear/mask plus IRQ registration (doorbell bit → MSI
  vector → top-half callback after ISR entry cost),
* PIO window copies (the paper's "memcpy" data path — write-combined
  stores out, painful uncached loads in),
* DMA submission from paged user buffers (per-page SG) or pinned buffers.
"""

from __future__ import annotations

import functools
from typing import Callable, Generator, Sequence

import numpy as np

from ..host.node import Host
from ..memory import PhysSegment
from ..obsv.spans import NULL_SCOPE
from ..pcie.config import (
    COMMAND_BUS_MASTER,
    COMMAND_MEMORY_ENABLE,
    REG_COMMAND,
    REG_VENDOR_ID,
)
from .device import NtbEndpoint
from .dma import LinkDownError
from .doorbell import DOORBELL_BITS

__all__ = ["NtbDriver", "DriverError"]


class DriverError(Exception):
    """Probe failure or misuse of the driver API."""


class NtbDriver:
    """Bound driver instance for one (host, endpoint) pair."""

    def __init__(self, host: Host, endpoint: NtbEndpoint, side: str,
                 irq_base: int):
        if not side or not isinstance(side, str):
            raise DriverError(
                f"side must be a topology port name "
                f"('left', 'right', 'x+', ...), got {side!r}")
        self.host = host
        self.endpoint = endpoint
        self.side = side
        self.irq_base = irq_base
        self.name = f"{host.name}.ntb.{side}"
        #: observability sink; replaced by instrument_cluster when tracing.
        self.scope = NULL_SCOPE
        self._probed = False
        self._bar_sizes: dict[int, int] = {}
        self._irq_handlers: dict[int, Callable[[int], None]] = {}
        #: lifetime count of master-aborted reads/writes (severed cable).
        self.master_aborts = 0

        endpoint.attach_host(
            memory=host.memory,
            memory_port=host.memory_port,
            requester_id=self._requester_id(),
        )
        host.adapters[side] = self

    def _requester_id(self) -> int:
        # bus/device/function style: host id in the bus field, side in dev.
        # One function number per seated adapter; the 16-vector-per-port
        # IRQ layout already numbers ports, so reuse it (left=0, right=1).
        return (self.host.host_id << 8) | (self.irq_base // 16)

    @property
    def requester_id(self) -> int:
        rid = self.endpoint.requester_id
        assert rid is not None
        return rid

    # -- enumeration ---------------------------------------------------------------
    def probe(self) -> Generator:
        """Config-space enumeration: vendor check, BAR sizing, enables."""
        cpu = self.host.cpu
        cs = self.endpoint.config_space
        yield from cpu.mmio_reg_read()
        ident = cs.read32(REG_VENDOR_ID)
        vendor, device = ident & 0xFFFF, ident >> 16
        if vendor != self.endpoint.config.vendor_id:
            raise DriverError(
                f"{self.name}: unexpected vendor {vendor:#x} "
                f"(device {device:#x})"
            )
        for window in self.endpoint.outgoing:
            bar_index = window.bar.index
            # Sizing protocol: one read, one write, one read, one write.
            yield from cpu.mmio_reg_read()
            yield from cpu.mmio_reg_write()
            yield from cpu.mmio_reg_read()
            yield from cpu.mmio_reg_write()
            self._bar_sizes[bar_index] = cs.probe_bar_size(bar_index)
        yield from cpu.mmio_reg_write()
        cs.write32(REG_COMMAND, COMMAND_MEMORY_ENABLE | COMMAND_BUS_MASTER)
        self._probed = True

    @property
    def is_probed(self) -> bool:
        return self._probed

    def bar_size(self, bar_index: int) -> int:
        if not self._probed:
            raise DriverError(f"{self.name}: bar_size before probe")
        return self._bar_sizes[bar_index]

    # -- window programming --------------------------------------------------------
    def program_incoming(self, window_index: int, phys_address: int,
                         size: int) -> Generator:
        """Program the incoming translation registers (two MMIO writes)."""
        yield from self.host.cpu.mmio_reg_write()
        yield from self.host.cpu.mmio_reg_write()
        self.endpoint.program_incoming(window_index, phys_address, size)

    def add_lut_entry(self, remote_requester_id: int, local_id: int) -> Generator:
        yield from self.host.cpu.mmio_reg_write()
        self.endpoint.lut.add(remote_requester_id, local_id)

    # -- scratchpads ------------------------------------------------------------------
    def spad_write(self, index: int, value: int) -> Generator:
        """Write a scratchpad register.

        The registers live on the cable's bridge pair, so writes into a
        severed cable are silently dropped (posted)."""
        yield from self.host.cpu.mmio_reg_write()
        if self.endpoint.link_down:
            return
        self.endpoint.spad_file().write(index, value)

    def spad_read(self, index: int) -> Generator:
        """Read a scratchpad register; all-ones when the cable is severed
        (master-abort), which is what link-watchdogs key on."""
        yield from self.host.cpu.mmio_reg_read()
        if self.endpoint.link_down:
            self.master_aborts += 1
            return 0xFFFFFFFF
        return self.endpoint.spad_file().read(index)

    def spad_write_block(self, start: int, values: Sequence[int]) -> Generator:
        for offset, value in enumerate(values):
            yield from self.spad_write(start + offset, value)

    def spad_read_block(self, start: int, count: int) -> Generator:
        values = []
        for offset in range(count):
            value = yield from self.spad_read(start + offset)
            values.append(value)
        return tuple(values)

    # -- doorbells ---------------------------------------------------------------------
    def ring_doorbell(self, bit: int) -> Generator:
        """Ring the *peer's* doorbell bit (posted MMIO write + link)."""
        with self.scope.span("doorbell_ring", category="driver",
                             track=self.name, bit=bit):
            yield from self.host.cpu.mmio_reg_write()
            yield from self.endpoint.ring_peer_doorbell(bit)

    def clear_doorbell(self, bit: int) -> Generator:
        """W1C our local pending bit."""
        yield from self.host.cpu.mmio_reg_write()
        self.endpoint.doorbell.clear(bit)

    def drain_doorbells(self) -> Generator:
        """Read-and-clear all local pending bits (ISR bottom-half entry)."""
        yield from self.host.cpu.mmio_reg_read()
        yield from self.host.cpu.mmio_reg_write()
        return self.endpoint.doorbell.drain()

    def mask_doorbell(self, bit: int) -> Generator:
        yield from self.host.cpu.mmio_reg_write()
        self.endpoint.doorbell.set_mask(bit)

    def unmask_doorbell(self, bit: int) -> Generator:
        yield from self.host.cpu.mmio_reg_write()
        self.endpoint.doorbell.clear_mask(bit)

    def enable_interrupts(self) -> None:
        """Wire doorbell bits to MSI vectors ``irq_base + bit``."""
        controller = self.host.interrupts
        self.endpoint.doorbell.interrupt_sink = (
            lambda bit: controller.raise_msi(self.irq_base + bit)
        )

    def request_irq(self, bit: int, callback: Callable[[int], None]) -> None:
        """Register a top-half for one doorbell bit.

        The callback runs ``isr_entry_us`` after MSI delivery and receives
        the doorbell bit.  Top halves must be tiny (latch + kick a thread).
        """
        if not (0 <= bit < DOORBELL_BITS):
            raise DriverError(f"{self.name}: doorbell bit {bit} out of range")
        vector = self.irq_base + bit
        cpu = self.host.cpu

        def top_half(_vector: int) -> None:
            delay = self.host.cost_model.isr_entry_us
            timeout = self.host.env.timeout(delay)
            # Partial of a bound method so the bottom-half step stays
            # attributable to this driver's host for schedule analysis.
            timeout.callbacks.append(
                functools.partial(self._run_bottom_half, callback, bit))

        self.host.interrupts.register(vector, top_half)
        self._irq_handlers[bit] = callback

    def _run_bottom_half(self, callback: Callable[[int], None], bit: int,
                         _evt: object) -> None:
        callback(bit)

    # -- PIO (the paper's "memcpy" path) ---------------------------------------------
    def pio_window_write(self, window_index: int, offset: int,
                         data: bytes | np.ndarray) -> Generator:
        """CPU store loop into the outgoing window (write-combined rate).

        Raises :class:`~repro.ntb.dma.LinkDownError` when the cable is
        severed: the stores themselves are posted (silently dropped at the
        endpoint), but a real driver's write loop is fenced by a readback
        that master-aborts, so the copy as a whole fails loudly — matching
        the DMA path's error surface.
        """
        buf = np.frombuffer(memoryview(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data.view(np.uint8).reshape(-1)
        chunk = self.host.cost_model.pio_chunk
        with self.scope.span("pio_copy", category="driver", track=self.name,
                             direction="write", nbytes=int(buf.size)):
            cursor = 0
            while cursor < buf.size:
                if self.endpoint.link_down:
                    self.master_aborts += 1
                    raise LinkDownError(
                        f"{self.name}: PIO write master-aborted at byte "
                        f"{cursor}/{buf.size} (cable severed)"
                    )
                take = min(chunk, buf.size - cursor)
                yield from self.host.cpu.pio_write(take)
                self.endpoint.window_write_functional(
                    window_index, offset + cursor, buf[cursor:cursor + take]
                )
                cursor += take

    def pio_window_read(self, window_index: int, offset: int,
                        nbytes: int) -> Generator:
        """CPU load loop from the window (uncached read rate — slow).

        Reads across a severed cable complete with all-ones at the
        endpoint (master abort); the driver detects the signature and
        raises :class:`~repro.ntb.dma.LinkDownError` instead of handing
        garbage to the caller.
        """
        out = np.empty(nbytes, dtype=np.uint8)
        chunk = self.host.cost_model.pio_chunk
        with self.scope.span("pio_copy", category="driver", track=self.name,
                             direction="read", nbytes=nbytes):
            cursor = 0
            while cursor < nbytes:
                if self.endpoint.link_down:
                    self.master_aborts += 1
                    raise LinkDownError(
                        f"{self.name}: PIO read master-aborted at byte "
                        f"{cursor}/{nbytes} (cable severed)"
                    )
                take = min(chunk, nbytes - cursor)
                yield from self.host.cpu.pio_read(take)
                out[cursor:cursor + take] = \
                    self.endpoint.window_read_functional(
                        window_index, offset + cursor, take
                    )
                cursor += take
        return out

    # -- DMA ----------------------------------------------------------------------------
    def dma_write_user(self, window_index: int, window_offset: int,
                       virt: int, nbytes: int) -> Generator:
        """Submit a DMA from a *paged* user buffer: one descriptor per page."""
        segments = self.host.user_segments(virt, nbytes)
        yield from self.host.cpu.dma_submit()
        return self.endpoint.dma_write(window_index, window_offset, segments)

    def dma_write_segments(self, window_index: int, window_offset: int,
                           segments: Sequence[PhysSegment],
                           chained: bool = False) -> Generator:
        """Submit a DMA from explicit (e.g. pinned) segments.

        ``chained=True`` links the descriptors into one chain so the
        engine prefetches descriptor *i+1* while segment *i* streams
        (fastpath; see :mod:`repro.core.fastpath`).
        """
        yield from self.host.cpu.dma_submit()
        return self.endpoint.dma_write(window_index, window_offset, segments,
                                       chained=chained)

    def dma_read_user(self, window_index: int, window_offset: int,
                      virt: int, nbytes: int) -> Generator:
        segments = self.host.user_segments(virt, nbytes)
        yield from self.host.cpu.dma_submit()
        return self.endpoint.dma_read(window_index, window_offset, segments)

    def dma_read_segments(self, window_index: int, window_offset: int,
                          segments: Sequence[PhysSegment]) -> Generator:
        yield from self.host.cpu.dma_submit()
        return self.endpoint.dma_read(window_index, window_offset, segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NtbDriver {self.name} probed={self._probed}>"
