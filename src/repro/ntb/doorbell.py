"""Doorbell registers: cross-host interrupt signalling.

Per the paper (§II-A): "there are sixteen doorbell interrupts that can be
set or cleared, as well as masked. One processor can send an interrupt
signal to another processor through one of the doorbell registers."

Model
-----
Each side of an NTB link owns a :class:`DoorbellRegister` holding 16 pending
bits and a 16-bit mask.  Setting a *peer* doorbell bit (an MMIO write that
crosses the bridge) latches the bit in the peer's pending register; if the
bit is unmasked, the peer's interrupt sink fires (wired to the host's MSI
controller by :mod:`repro.ntb.device`).

Doorbells are level-latched: the bit stays pending until the receiving
driver clears it, and re-setting an already-pending bit does **not** fire a
second interrupt — exactly the coalescing semantics real NTB hardware has,
which the service thread (Fig. 5) must handle by draining all work per wake.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..obsv.spans import NULL_SCOPE
from ..sim import Environment

__all__ = ["DoorbellError", "DoorbellRegister", "DOORBELL_BITS"]

DOORBELL_BITS = 16
_FULL_MASK = (1 << DOORBELL_BITS) - 1


class DoorbellError(Exception):
    """Bad doorbell bit index."""


class DoorbellRegister:
    """Pending/mask doorbell state for one side of an NTB link.

    ``edge_per_ring=True`` (the PLX "interrupt per doorbell write" MSI
    configuration, and this runtime's default) fires the sink on *every*
    unmasked ring; ``False`` gives classic level-latched coalescing where
    a ring on an already-pending bit is silent — the mode that forces
    drain-everything ISRs and which the tests exercise separately.
    """

    def __init__(self, env: Environment, name: str = "db",
                 edge_per_ring: bool = True):
        self.env = env
        self.name = name
        self.edge_per_ring = edge_per_ring
        #: observability sink; replaced by instrument_cluster when tracing.
        self.scope = NULL_SCOPE
        self._pending = 0
        self._mask = 0
        #: sink called as ``sink(bit)`` when an unmasked bit newly latches;
        #: the NTB endpoint wires this to the host interrupt controller.
        self.interrupt_sink: Optional[Callable[[int], None]] = None
        #: lifetime counts (diagnostics)
        self.set_count = 0
        self.interrupt_count = 0
        #: optional access probe ``probe(key, is_write)`` — ShmemCheck
        #: installs one to build per-step footprints for DPOR; None (the
        #: default) costs a single attribute test per access.
        self.probe: Optional[Callable[[tuple, bool], None]] = None

    def _probe(self, is_write: bool) -> None:
        if self.probe is not None:
            self.probe(("db", self.name), is_write)

    @staticmethod
    def _check_bit(bit: int) -> None:
        if not (0 <= bit < DOORBELL_BITS):
            raise DoorbellError(f"doorbell bit {bit} outside 0..{DOORBELL_BITS - 1}")

    # -- receiver-side register interface ---------------------------------------
    @property
    def pending(self) -> int:
        return self._pending

    @property
    def mask(self) -> int:
        return self._mask

    def is_pending(self, bit: int) -> bool:
        self._check_bit(bit)
        self._probe(False)
        return bool(self._pending & (1 << bit))

    def clear(self, bit: int) -> None:
        """W1C-style clear of one pending bit."""
        self._check_bit(bit)
        self._probe(True)
        self._pending &= ~(1 << bit)

    def clear_bits(self, bits: int) -> None:
        self._probe(True)
        self._pending &= ~(bits & _FULL_MASK)

    def drain(self) -> int:
        """Atomically read-and-clear all pending bits (ISR entry)."""
        self._probe(True)
        bits, self._pending = self._pending, 0
        return bits

    def set_mask(self, bit: int) -> None:
        """Mask a bit: it may still latch but will not interrupt."""
        self._check_bit(bit)
        self._probe(True)
        self._mask |= 1 << bit

    def clear_mask(self, bit: int) -> None:
        """Unmask a bit; if it latched while masked, fire now (level)."""
        self._check_bit(bit)
        self._probe(True)
        was_pending = self._pending & (1 << bit)
        self._mask &= ~(1 << bit)
        if was_pending:
            self._fire(bit)

    # -- transmitter side (called by the peer through the bridge) ----------------
    def latch(self, bit: int) -> None:
        """Latch a pending bit, firing the sink per the edge mode."""
        self._check_bit(bit)
        # latch() runs in the *ringer's* process, so the instant nests
        # under the sender's doorbell_ring span.
        self.scope.instant("doorbell_latch", category="driver",
                           track=self.name, bit=bit)
        self._probe(True)
        flag = 1 << bit
        already = self._pending & flag
        self._pending |= flag
        self.set_count += 1
        if self._mask & flag:
            return
        if self.edge_per_ring or not already:
            self._fire(bit)

    def _fire(self, bit: int) -> None:
        self.interrupt_count += 1
        if self.interrupt_sink is not None:
            self.interrupt_sink(bit)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DoorbellRegister {self.name} pending={self._pending:#06x} "
            f"mask={self._mask:#06x}>"
        )
