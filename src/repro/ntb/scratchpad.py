"""ScratchPad registers: the NTB link's shared 32-bit mailbox file.

Per §II-A/§III-A of the paper: each NTB port pair shares **eight 32-bit
ScratchPad registers**; a value written on one side is directly readable on
the other.  The OpenSHMEM runtime uses them for the host-ID / window-offset
handshake during ``shmem_init`` and to carry per-transfer metadata
(SrcId, DestId, symmetric index, offset, size) alongside doorbell interrupts.

The register file itself is passive state shared by the two endpoints of a
cable; access *timing* (a PIO read/write across PCIe) is charged by the
driver layer.  A change :class:`~repro.sim.Signal` lets polling-free models
wait for updates in tests.
"""

from __future__ import annotations

from ..sim import Environment, Signal

__all__ = [
    "ScratchpadError",
    "ScratchpadFile",
    "NUM_SCRATCHPADS",
    "LINK_MGMT_SPAD_BASE",
    "TOTAL_SCRATCHPADS",
]

NUM_SCRATCHPADS = 8

#: PEX87xx parts expose a second bank of eight link-management scratchpads
#: beyond the first data bank.  The OpenSHMEM mailboxes own registers
#: 0..7; the heartbeat/link-watchdog machinery owns 8..15, so the two can
#: share a cable without colliding.
LINK_MGMT_SPAD_BASE = NUM_SCRATCHPADS
TOTAL_SCRATCHPADS = 2 * NUM_SCRATCHPADS


class ScratchpadError(Exception):
    """Bad scratchpad index or value."""


class ScratchpadFile:
    """The shared 8 x 32-bit register file of one NTB link.

    Both connected endpoints hold a reference to the *same* instance —
    that is the non-transparent sharing the hardware provides.
    """

    def __init__(self, env: Environment, name: str = "spad",
                 count: int = NUM_SCRATCHPADS):
        if count < 1:
            raise ScratchpadError(f"need at least one register, got {count}")
        self.env = env
        self.name = name
        self.count = count
        self._regs = [0] * count
        self.changed = Signal(env, name=f"{name}.changed")
        #: lifetime write count (diagnostics)
        self.write_count = 0
        #: optional access probe ``probe(key, is_write)`` — ShmemCheck
        #: installs one to build per-step footprints for DPOR; None (the
        #: default) costs a single attribute test per access.
        self.probe = None

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.count):
            raise ScratchpadError(
                f"{self.name}: register index {index} outside 0..{self.count - 1}"
            )

    def read(self, index: int) -> int:
        self._check_index(index)
        if self.probe is not None:
            self.probe(("spad", self.name, index), False)
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        self._check_index(index)
        if not isinstance(value, int):
            raise ScratchpadError(f"{self.name}: non-integer value {value!r}")
        if self.probe is not None:
            self.probe(("spad", self.name, index), True)
        self._regs[index] = value & 0xFFFFFFFF
        self.write_count += 1
        self.changed.fire((index, self._regs[index]))

    def read_all(self) -> tuple[int, ...]:
        if self.probe is not None:
            for index in range(self.count):
                self.probe(("spad", self.name, index), False)
        return tuple(self._regs)

    def write_block(self, start: int, values: list[int]) -> None:
        """Write consecutive registers (transfer-info record)."""
        if start < 0 or start + len(values) > self.count:
            raise ScratchpadError(
                f"{self.name}: block [{start}, {start + len(values)}) "
                f"outside register file"
            )
        for offset, value in enumerate(values):
            self.write(start + offset, value)

    def read_block(self, start: int, count: int) -> tuple[int, ...]:
        if start < 0 or start + count > self.count:
            raise ScratchpadError(
                f"{self.name}: block [{start}, {start + count}) "
                f"outside register file"
            )
        if self.probe is not None:
            for index in range(start, start + count):
                self.probe(("spad", self.name, index), False)
        return tuple(self._regs[start:start + count])

    def clear(self) -> None:
        for index in range(self.count):
            if self.probe is not None:
                self.probe(("spad", self.name, index), True)
            self._regs[index] = 0
        self.changed.fire(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ScratchpadFile {self.name} regs={self._regs}>"
