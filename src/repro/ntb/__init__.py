"""PCIe Non-Transparent Bridge device model and host-side driver."""

from .bar import IncomingTranslation, OutgoingWindow, WindowError
from .device import (
    BYPASS_WINDOW,
    DATA_WINDOW,
    NtbEndpoint,
    NtbError,
    NtbPortConfig,
    PEX8749_DEVICE_ID,
    PLX_VENDOR_ID,
    connect_endpoints,
)
from .dma import DmaConfig, DmaDirection, DmaEngine, DmaRequest, LinkDownError
from .doorbell import DOORBELL_BITS, DoorbellError, DoorbellRegister
from .driver import DriverError, NtbDriver
from .lut import LookupTable, LutError
from .scratchpad import (
    LINK_MGMT_SPAD_BASE,
    NUM_SCRATCHPADS,
    TOTAL_SCRATCHPADS,
    ScratchpadError,
    ScratchpadFile,
)

__all__ = [
    "IncomingTranslation",
    "OutgoingWindow",
    "WindowError",
    "BYPASS_WINDOW",
    "DATA_WINDOW",
    "NtbEndpoint",
    "NtbError",
    "NtbPortConfig",
    "PEX8749_DEVICE_ID",
    "PLX_VENDOR_ID",
    "connect_endpoints",
    "DmaConfig",
    "DmaDirection",
    "DmaEngine",
    "DmaRequest",
    "LinkDownError",
    "DOORBELL_BITS",
    "DoorbellError",
    "DoorbellRegister",
    "DriverError",
    "NtbDriver",
    "LookupTable",
    "LutError",
    "LINK_MGMT_SPAD_BASE",
    "NUM_SCRATCHPADS",
    "TOTAL_SCRATCHPADS",
    "ScratchpadError",
    "ScratchpadFile",
]
