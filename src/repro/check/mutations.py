"""Seeded bugs: the checker's checkers.

A verification harness that has never caught a bug proves nothing.  Each
mutation here re-introduces a realistic protocol defect as a reversible
monkey-patch; the test suite (and the CI ``shmemcheck`` job) asserts
that exploration *with* the mutation produces a violation with a
replayable trace, and that the same exploration without it stays clean.

``dropped-credit-ack``
    The receiver drains a bypass slot but its ACK doorbell is lost: the
    sender's credit is never returned.  Under the fastpath credit pool
    the sender eventually queues on a slot that can never free —
    liveness failure on the ``fastpath-credit`` model.
``lost-doorbell``
    A data doorbell ring crosses the bridge but the pending bit never
    latches (the classic lost-wakeup hardware erratum).  The payload
    sits in the data window, the receiving service never learns of it,
    and the sender waits forever for an ACK — caught on ``put-signal``.
``watermark-off-by-one``
    The degraded-mode barrier coordinator releases ``min(arrivals)+1``
    instead of ``min(arrivals)``: a barrier generation retires before
    every PE arrived.  Caught on ``barrier-recovery`` fault branches as
    a data-consistency violation (a PE reads its neighbor's buffer
    before the neighbor wrote it).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, ContextManager, Iterator

from ..core import barrier as _barrier
from ..core import transfer as _transfer
from ..ntb import doorbell as _doorbell

__all__ = ["MUTATIONS"]


@contextmanager
def dropped_credit_ack() -> Iterator[None]:
    """Swallow the first bypass-slot ACK of the run."""
    state = {"dropped": False}

    def on_ack(self: _transfer.BypassMailbox) -> None:
        if not state["dropped"]:
            state["dropped"] = True
            return  # BUG: credit never returned to the pool
        _transfer._MailboxBase.on_ack(self)

    _transfer.BypassMailbox.on_ack = on_ack  # type: ignore[method-assign]
    try:
        yield
    finally:
        del _transfer.BypassMailbox.on_ack  # type: ignore[misc]


@contextmanager
def lost_doorbell() -> Iterator[None]:
    """Swallow the first data-message doorbell ring of the run."""
    original = _doorbell.DoorbellRegister.latch
    data_bits = (_transfer.DOORBELL_DMAPUT, _transfer.DOORBELL_BYPASS_MSG)
    state = {"dropped": False}

    def latch(self: _doorbell.DoorbellRegister, bit: int) -> None:
        if not state["dropped"] and bit in data_bits:
            state["dropped"] = True
            return  # BUG: ring lost, pending bit never latches
        original(self, bit)

    _doorbell.DoorbellRegister.latch = latch  # type: ignore[method-assign]
    try:
        yield
    finally:
        _doorbell.DoorbellRegister.latch = original  # type: ignore[method-assign]


@contextmanager
def watermark_off_by_one() -> Iterator[None]:
    """Degraded barrier coordinator releases one generation too early."""
    original = _barrier._TokenBarrier._coord_arrive

    def _coord_arrive(self: "_barrier._TokenBarrier", pe: int,
                      gen: int) -> None:
        self._arrivals[pe] = max(self._arrivals.get(pe, -1), gen)
        rt = self.rt
        if len(self._arrivals) == rt.n_pes:
            # BUG: off-by-one watermark — releases a generation that not
            # every PE has arrived at yet.
            watermark = min(self._arrivals.values()) + 1
            if watermark > self._released:
                self._released = watermark
                self._signal.fire(("release", watermark))
                for dest in range(rt.n_pes):
                    if dest != rt.my_pe_id:
                        rt.env.process(
                            self._release_task(dest, watermark),
                            name=f"{rt.name}.barrier.release{dest}",
                        )
                return
        if self._released >= gen and pe != rt.my_pe_id:
            rt.env.process(
                self._release_task(pe, self._released),
                name=f"{rt.name}.barrier.rerelease{pe}",
            )

    _barrier._TokenBarrier._coord_arrive = _coord_arrive  # type: ignore[method-assign]
    try:
        yield
    finally:
        _barrier._TokenBarrier._coord_arrive = original  # type: ignore[method-assign]


MUTATIONS: dict[str, Callable[[], ContextManager[None]]] = {
    "dropped-credit-ack": dropped_credit_ack,
    "lost-doorbell": lost_doorbell,
    "watermark-off-by-one": watermark_off_by_one,
}

#: the model each mutation is expected to bite on (used by the CLI's
#: ``--mutate`` smoke mode and the CI job).
MUTATION_TARGETS: dict[str, str] = {
    "dropped-credit-ack": "fastpath-credit",
    "lost-doorbell": "put-signal",
    "watermark-off-by-one": "barrier-recovery",
}
