"""The bundled protocol models ShmemCheck explores.

A :class:`CheckModel` is a tiny SPMD program plus the runtime
configuration it runs under and a post-run property check.  Models are
deliberately small — a handful of operations per PE — because the
explorer re-executes them once per schedule; what makes them interesting
is that each one concentrates a protocol mechanism whose correctness
depends on ordering:

``lock``
    Two PEs increment a shared counter under the paper's distributed
    lock.  Mutual exclusion must hold in *every* interleaving.
``deadlock-demo``
    Two locks taken in opposite orders — the textbook ABBA bug, with a
    flag handshake forcing both PEs to hold their first lock before
    either requests its second.  Every schedule wedges; the wait-for
    graph must name the cycle.  (A model that is *supposed* to fail:
    the harness's positive control.)
``barrier-recovery``
    A three-PE ring exchanging data around barriers, with fault branches
    that sever a cable at decision points across the workload's active
    window — the paper's degraded-barrier protocol under systematic
    fault placement, asserting data only on the post-recovery round.
``put-signal``
    Producer/consumer over ``shmem_put_signal`` + ``wait_until``: the
    signal must never overtake its payload.
``fastpath-credit``
    A multi-chunk put forwarded through the middle PE under the fastpath
    credit flow control — the mechanism the dropped-ACK mutation breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from ..core import PE, ShmemConfig
from ..core.errors import PeerUnreachableError, ShmemError
from ..fabric.heartbeat import HeartbeatConfig

__all__ = ["CheckModel", "MODELS"]

PeMain = Callable[[PE], Generator]


@dataclass(frozen=True)
class CheckModel:
    """One checkable program: code + config + property."""

    name: str
    n_pes: int
    main: PeMain
    make_config: Callable[[], ShmemConfig]
    #: cables the fault pass may sever, as (host, host) ring edges.
    fault_edges: tuple[tuple[int, int], ...] = ()
    #: restrict fault injection to decisions inside this virtual-time
    #: window (us).  Severs during the startup handshake wedge before
    #: the failure detector is armed, and severs after the workload's
    #: last data round test nothing — the window aims the fault pass at
    #: the instants the recovery protocol actually defends.
    fault_window_us: Optional[tuple[float, float]] = None
    #: virtual-time budget per schedule before declaring a liveness bug.
    horizon_us: float = 1_000_000.0
    #: simulator-step budget per schedule (livelock backstop).
    max_steps: int = 400_000
    #: post-run property over the per-PE results; returns problem strings.
    check_results: Optional[Callable[[list[Any]], list[str]]] = None
    #: True for positive controls that are *expected* to produce
    #: violations (the harness must find at least one).
    expect_violation: bool = False
    #: explorer defaults (overridable on the CLI).
    default_budget: int = 200
    tags: tuple[str, ...] = field(default=())


def _base_config(**overrides: Any) -> ShmemConfig:
    settings: dict[str, Any] = dict(
        sanitize="report",
        trace_spans=True,
        debug_checks=True,
    )
    settings.update(overrides)
    return ShmemConfig(**settings)


# --------------------------------------------------------------------- lock
def _lock_main(pe: PE) -> Generator:
    lock = yield from pe.static_symmetric("chk.lock", 8)
    counter = yield from pe.static_symmetric("chk.counter", 8)
    yield from pe.barrier_all()
    yield from pe.set_lock(lock)
    value = yield from pe.g(counter, 0)
    yield from pe.p(counter, value + 1, 0)
    yield from pe.clear_lock(lock)
    yield from pe.barrier_all()
    final = yield from pe.g(counter, 0)
    return int(final)


def _lock_check(results: list[Any]) -> list[str]:
    expect = len(results)
    return [
        f"PE {pe}: counter ended at {got}, want {expect} "
        "(lost update — mutual exclusion violated)"
        for pe, got in enumerate(results) if got != expect
    ]


# ------------------------------------------------------------ deadlock demo
def _deadlock_main(pe: PE) -> Generator:
    lock_a = yield from pe.static_symmetric("chk.lockA", 8)
    lock_b = yield from pe.static_symmetric("chk.lockB", 8)
    flag = yield from pe.static_symmetric("chk.holding", 8)
    yield from pe.barrier_all()
    me, other = pe.my_pe(), 1 - pe.my_pe()
    first, second = ((lock_a, lock_b) if me == 0
                     else (lock_b, lock_a))
    yield from pe.set_lock(first)
    # Tell the peer we hold our first lock, and wait until it holds its —
    # the handshake forces the hold-and-wait overlap a free-running race
    # would only hit under timings the deterministic kernel never takes.
    yield from pe.p(flag, 1, other)
    yield from pe.wait_until(flag, "==", 1)
    yield from pe.set_lock(second)
    yield from pe.clear_lock(second)
    yield from pe.clear_lock(first)
    yield from pe.barrier_all()
    return True


# --------------------------------------------------------- barrier recovery
def _barrier_recovery_main(pe: PE) -> Generator:
    """Ring puts around barriers, surviving a mid-phase cable sever.

    The fault contract (docs/FAULTS.md) promises delivery only *after*
    recovery: a put racing the sever may raise
    :class:`PeerUnreachableError`, and a barrier crossed by the cut
    completes via the degraded watermark protocol without guaranteeing
    the phase's data landed.  So the phases under fire are tolerant —
    attempt, swallow unreachable, barrier — and correctness is asserted
    on a strict post-recovery round over the rerouted ring.
    """
    me, n = pe.my_pe(), pe.num_pes()
    buf = yield from pe.static_symmetric("chk.buf", 8)
    yield from pe.barrier_all()
    for phase in range(2):
        try:
            yield from pe.p(buf, 1000 * phase + me, (me + 1) % n)
        except PeerUnreachableError:
            pass
        yield from pe.barrier_all()
    # Let heartbeat detection (2 x 200 us) and retry backoff drain, so
    # the strict round below runs on the recovered fabric.
    yield pe.rt.env.timeout(2_000.0)
    yield from pe.barrier_all()
    yield from pe.p(buf, 7000 + me, (me + 1) % n)
    yield from pe.barrier_all()
    got = int(pe.read_symmetric(buf, 8).view(np.int64)[0])
    expect = 7000 + (me - 1) % n
    if got != expect:
        raise ShmemError(
            f"PE {me}: post-recovery neighbor value {got}, "
            f"want {expect} (barrier released early?)"
        )
    yield from pe.barrier_all()
    return True


# --------------------------------------------------------------- put_signal
_PAYLOAD = tuple(range(7, 7 + 8 * 3, 3))  # 8 int64 values


def _put_signal_main(pe: PE) -> Generator:
    data = yield from pe.static_symmetric("chk.data", 64)
    flag = yield from pe.static_symmetric("chk.flag", 8)
    yield from pe.barrier_all()
    if pe.my_pe() == 0:
        payload = np.asarray(_PAYLOAD, dtype=np.int64)
        yield from pe.put_signal(data, payload.view(np.uint8), 1, flag, 1)
        result = sum(_PAYLOAD)
    else:
        yield from pe.wait_until(flag, "==", 1)
        got = pe.read_symmetric_array(data, 8, np.int64)
        result = int(got.sum())
    yield from pe.barrier_all()
    return result


def _put_signal_check(results: list[Any]) -> list[str]:
    expect = sum(_PAYLOAD)
    return [
        f"PE {pe}: saw payload sum {got}, want {expect} "
        "(signal overtook its data)"
        for pe, got in enumerate(results) if got != expect
    ]


# ----------------------------------------------------------- fastpath credit
_CHUNK = 1024
_N_CHUNKS = 4


def _fastpath_credit_main(pe: PE) -> Generator:
    sink = yield from pe.static_symmetric("chk.sink", _CHUNK * _N_CHUNKS)
    yield from pe.barrier_all()
    last = pe.num_pes() - 1
    if pe.my_pe() == 0:
        # One large put: forwarded through the middle PE in fwd_chunk
        # pieces, exercising the bypass credit pool.
        blob = np.concatenate([
            np.full(_CHUNK, 1 + i, dtype=np.uint8) for i in range(_N_CHUNKS)
        ])
        yield from pe.put(sink, blob, last)
        yield from pe.quiet()
    yield from pe.barrier_all()
    if pe.my_pe() == last:
        got = pe.read_symmetric(sink, _CHUNK * _N_CHUNKS)
        bad = [
            i for i in range(_N_CHUNKS)
            if not (got[i * _CHUNK:(i + 1) * _CHUNK] == 1 + i).all()
        ]
        return ("corrupt chunks " + repr(bad)) if bad else "ok"
    return "ok"


def _fastpath_credit_config() -> ShmemConfig:
    # Deferred import: the fastpath stack loads only for this model's
    # explicitly fastpath-enabled configuration (lint: fastpath-gating).
    from ..core.fastpath import FastpathConfig
    return _base_config(
        fwd_chunk=_CHUNK,
        fastpath=FastpathConfig(credit_slots=2),
    )


def _fastpath_credit_check(results: list[Any]) -> list[str]:
    return [
        f"PE {pe}: {got}"
        for pe, got in enumerate(results) if got != "ok"
    ]


MODELS: dict[str, CheckModel] = {
    model.name: model
    for model in (
        CheckModel(
            name="lock",
            n_pes=2,
            main=_lock_main,
            make_config=_base_config,
            check_results=_lock_check,
            default_budget=400,
            tags=("ci",),
        ),
        CheckModel(
            name="deadlock-demo",
            n_pes=2,
            main=_deadlock_main,
            make_config=_base_config,
            expect_violation=True,
            default_budget=200,
            horizon_us=200_000.0,
            tags=("demo",),
        ),
        CheckModel(
            name="barrier-recovery",
            n_pes=3,
            main=_barrier_recovery_main,
            make_config=lambda: _base_config(
                heartbeat=HeartbeatConfig(period_us=200.0,
                                          miss_threshold=2),
                # Retry long enough to outlast detection (2 x 200 us),
                # so mid-round sends reroute instead of giving up.
                max_retries=8,
                retry_backoff_us=200.0,
            ),
            fault_edges=((0, 1),),
            fault_window_us=(450.0, 1_300.0),
            horizon_us=2_000_000.0,
            default_budget=3_000,
            tags=("ci", "faults"),
        ),
        CheckModel(
            name="put-signal",
            n_pes=2,
            main=_put_signal_main,
            make_config=_base_config,
            check_results=_put_signal_check,
            default_budget=200,
            tags=("ci",),
        ),
        CheckModel(
            name="fastpath-credit",
            n_pes=3,
            main=_fastpath_credit_main,
            make_config=_fastpath_credit_config,
            check_results=_fastpath_credit_check,
            default_budget=200,
            tags=("ci", "fastpath"),
        ),
    )
}
