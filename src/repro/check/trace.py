"""Replayable schedule traces.

A :class:`ScheduleTrace` pins down one execution of a model completely:
the tie-break choice made at each scheduler decision point, plus (for
fault branches) the decision index at which a cable sever is injected.
Decision points are the *only* freedom the deterministic simulator has,
so ``(model, mutation, trace)`` reproduces a run bit-for-bit — which is
what makes every ShmemCheck counterexample a one-command repro.

The JSON form is intentionally tiny and self-describing so CI can upload
counterexamples as artifacts and a developer can replay them locally with
``python -m repro.check --replay <file>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Counterexample", "FaultPoint", "ScheduleTrace"]


@dataclass(frozen=True)
class FaultPoint:
    """Inject a fault when the scheduler reaches decision ``decision``.

    ``kind`` is currently always ``"sever"`` (cut the cable between hosts
    ``edge[0]`` and ``edge[1]``); the field exists so future fault kinds
    (drops, delays) serialize without a format change.
    """

    decision: int
    edge: tuple[int, int]
    kind: str = "sever"

    def to_json(self) -> dict[str, Any]:
        return {"decision": self.decision,
                "edge": list(self.edge), "kind": self.kind}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FaultPoint":
        return cls(decision=int(data["decision"]),
                   edge=(int(data["edge"][0]), int(data["edge"][1])),
                   kind=str(data.get("kind", "sever")))


@dataclass(frozen=True)
class ScheduleTrace:
    """A forced prefix of tie-break choices (+ optional fault injection).

    ``choices[d]`` is the candidate index taken at decision ``d``; beyond
    the prefix the scheduler takes index 0 (heap order — the default
    schedule).  A trailing run of zeros is therefore redundant, which
    :meth:`shrunk` exploits to keep counterexamples short.
    """

    choices: tuple[int, ...] = ()
    fault: Optional[FaultPoint] = None

    def shrunk(self) -> "ScheduleTrace":
        """Drop trailing default choices (keeping the fault point valid)."""
        keep = len(self.choices)
        floor = self.fault.decision if self.fault is not None else 0
        while keep > 0 and keep > floor and self.choices[keep - 1] == 0:
            keep -= 1
        if keep == len(self.choices):
            return self
        return ScheduleTrace(choices=self.choices[:keep], fault=self.fault)

    def with_fault(self, fault: FaultPoint) -> "ScheduleTrace":
        return ScheduleTrace(choices=self.choices, fault=fault)

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"choices": list(self.choices)}
        if self.fault is not None:
            out["fault"] = self.fault.to_json()
        return out

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ScheduleTrace":
        fault = data.get("fault")
        return cls(
            choices=tuple(int(c) for c in data.get("choices", ())),
            fault=FaultPoint.from_json(fault) if fault else None,
        )


@dataclass
class Counterexample:
    """A violation plus everything needed to replay it."""

    model: str
    trace: ScheduleTrace
    kind: str
    detail: str
    mutation: Optional[str] = None
    time_us: float = 0.0
    blocked: list[str] = field(default_factory=list)
    open_spans: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "mutation": self.mutation,
            "kind": self.kind,
            "detail": self.detail,
            "time_us": self.time_us,
            "blocked": self.blocked,
            "open_spans": self.open_spans,
            "trace": self.trace.to_json(),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Counterexample":
        return cls(
            model=str(data["model"]),
            mutation=data.get("mutation"),
            kind=str(data.get("kind", "?")),
            detail=str(data.get("detail", "")),
            time_us=float(data.get("time_us", 0.0)),
            blocked=[str(b) for b in data.get("blocked", [])],
            open_spans=[str(s) for s in data.get("open_spans", [])],
            trace=ScheduleTrace.from_json(data.get("trace", {})),
        )

    @classmethod
    def loads(cls, text: str) -> "Counterexample":
        return cls.from_json(json.loads(text))
