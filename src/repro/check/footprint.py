"""Per-step footprints: the independence oracle behind DPOR.

Two scheduler steps *commute* when swapping them cannot change any later
state.  ShmemCheck over-approximates each step's effects with a
:class:`Footprint` built from two sources while the step runs:

* **domains** — which simulated actors the step resumed or notified.  A
  step's domains are the *processes* it resumed (``proc:pe0.main``), the
  hardware/driver models whose bound-method callbacks it ran
  (``obj:host0.pic``), and the resources whose grants it delivered
  (``res:host0.memport.server``).  Crucially this includes wake-up
  attribution: when step A triggers an event that resumes process P,
  A's footprint gains P's domain, so the A-before-P ordering is never
  pruned away.
* **shared-state keys** — every mutable container two actors can reach
  carries an access probe reporting ``(key, is_write)`` pairs into the
  running step's footprint: symmetric-heap shadow cells (the
  instrumented sanitizer), scratchpad registers and doorbells (the NTB
  hardware the nodes genuinely share), physical-memory pages, and the
  FIFO order of every :class:`~repro.sim.Resource` and
  :class:`~repro.sim.Store`.

Cross-actor interaction therefore flows through one of: a simulation
event (captured by wake-up attribution), or a probed container (captured
by key overlap).  Plain-Python state shared by two processes of one node
that bypasses *both* channels — e.g. a commutative max-merge into a
bookkeeping dict with no event fired — is not modelled; the seeded
mutation suite (:mod:`repro.check.mutations`) exists to catch oracle
regressions of that kind.

A step whose effects cannot be attributed at all (a callback on a plain
function, an unnamed process) is **opaque** and conflicts with
everything: DPOR then explores rather than prunes.  Wrong-way errors are
therefore one-sided — imprecision costs schedules, never soundness.
"""

from __future__ import annotations

import functools

from ..sim import Event, Process

__all__ = ["Footprint", "domains_of"]

#: recursion guard when resolving callback targets through conditions.
_MAX_DEPTH = 6


class Footprint:
    """Read/write sets over shared keys plus the set of touched actors."""

    __slots__ = ("reads", "writes", "domains", "opaque")

    def __init__(self) -> None:
        self.reads: set = set()
        self.writes: set = set()
        self.domains: set = set()
        self.opaque = False

    def note(self, key: object, is_write: bool) -> None:
        (self.writes if is_write else self.reads).add(key)

    def add_domains(self, domains: set, opaque: bool) -> None:
        self.domains |= domains
        if opaque:
            self.opaque = True

    def conflicts(self, other: "Footprint") -> bool:
        """True unless the two steps provably commute."""
        if self.opaque or other.opaque:
            return True
        if self.domains & other.domains:
            return True
        if self.writes & (other.writes | other.reads):
            return True
        if other.writes & self.reads:
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Footprint dom={sorted(self.domains)} r={len(self.reads)} "
            f"w={len(self.writes)}{' opaque' if self.opaque else ''}>"
        )


def domains_of(event: Event) -> tuple[set, bool]:
    """Which actors does processing ``event`` touch? ``(domains, opaque)``.

    Walks the event's callbacks: bound ``Process`` targets resolve to
    their process identity; condition/event targets recurse one level
    into *their* callbacks; named hardware/driver models resolve to an
    object identity; anything else (plain closures) makes the step
    opaque.
    """
    domains: set = set()
    opaque = _collect(event, domains, _MAX_DEPTH)
    return domains, opaque


def _collect(event: Event, domains: set, depth: int) -> bool:
    if depth <= 0:
        return True
    opaque = False
    if isinstance(event, Process):
        name = getattr(event, "name", None)
        if name:
            domains.add(f"proc:{name}")
        else:
            opaque = True
    resource = getattr(event, "resource", None)
    if resource is not None:
        # A Resource grant: conflict with every other step that touches
        # the same resource (its accesses are also probed separately).
        domains.add(f"res:{getattr(resource, 'name', '') or ''}")
    callbacks = event.callbacks
    if callbacks is None:
        return opaque
    for callback in callbacks:
        func = callback
        while isinstance(func, functools.partial):
            func = func.func
        owner = getattr(func, "__self__", None)
        if isinstance(owner, Process):
            name = getattr(owner, "name", None)
            if name:
                domains.add(f"proc:{name}")
            else:
                opaque = True
        elif isinstance(owner, Event):
            # Notifying a condition (AllOf/AnyOf child completion) either
            # leaves it pending — a commutative counter update private to
            # the condition — or triggers it, in which case the trigger is
            # scheduled through the policy's ``scheduled`` hook and the
            # firing step picks up the condition's subscribers dynamically.
            # Either way the static walk need not charge this step.
            pass
        elif owner is not None:
            # A hardware/driver model (interrupt controller, NTB driver):
            # its private state belongs to it alone, and whatever shared
            # containers it touches are probed.
            name = getattr(owner, "name", None)
            if isinstance(name, str) and name:
                domains.add(f"obj:{name}")
            else:
                opaque = True
        else:
            # Plain function / unknown receiver: unattributable effects.
            opaque = True
    return opaque
