"""``python -m repro.check`` — the ShmemCheck command line.

Explore models::

    python -m repro.check lock put-signal --budget 400
    python -m repro.check --all --save-traces out/

Replay a counterexample trace uploaded by CI::

    python -m repro.check --replay out/lock-deadlock-cycle.json

Prove the harness bites (mutation smoke)::

    python -m repro.check --mutate lost-doorbell --expect-violation
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .explorer import ExploreReport, explore
from .models import MODELS, CheckModel
from .mutations import MUTATION_TARGETS, MUTATIONS
from .runner import CheckSettings, run_schedule
from .trace import Counterexample, ScheduleTrace

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="systematic schedule/fault exploration of the "
                    "OpenSHMEM-over-NTB runtime",
    )
    parser.add_argument("models", nargs="*",
                        help="models to explore (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available models and mutations")
    parser.add_argument("--all", action="store_true",
                        help="explore every CI-tagged model")
    parser.add_argument("--budget", type=int, default=None,
                        help="max schedules per model "
                             "(default: per-model)")
    parser.add_argument("--horizon-us", type=float, default=None,
                        help="virtual-time liveness bound per schedule")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="simulator-step bound per schedule")
    parser.add_argument("--no-dpor", action="store_true",
                        help="disable partial-order reduction "
                             "(pure DFS)")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip fault-injection branches")
    parser.add_argument("--stop-on-first", action="store_true",
                        help="stop a model at its first violation")
    parser.add_argument("--mutate", metavar="NAME", default=None,
                        help="run with a seeded bug "
                             f"({', '.join(sorted(MUTATIONS))})")
    parser.add_argument("--expect-violation", action="store_true",
                        help="exit 0 only if a violation IS found "
                             "(mutation smoke / positive controls)")
    parser.add_argument("--require-exhaustive", action="store_true",
                        help="fail if any model's DFS frontier did not "
                             "empty within budget (CI gate)")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay a counterexample JSON file")
    parser.add_argument("--save-traces", metavar="DIR", default=None,
                        help="write counterexample JSON files here")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable summary on stdout")
    return parser


def _list_everything() -> None:
    print("models:")
    for model in MODELS.values():
        flags = ", ".join(model.tags) or "-"
        extra = " [expected-violation demo]" if model.expect_violation else ""
        print(f"  {model.name:<18} {model.n_pes} PEs  budget "
              f"{model.default_budget:<5} tags: {flags}{extra}")
    print("mutations:")
    for name in sorted(MUTATIONS):
        print(f"  {name:<22} bites on: {MUTATION_TARGETS[name]}")


def _save_counterexamples(report: ExploreReport, directory: Path,
                          mutation: Optional[str]) -> list[Path]:
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for index, violation in enumerate(report.violations):
        example = violation.counterexample(report.model, mutation)
        path = directory / (
            f"{report.model}-{violation.kind}-{index}.json")
        path.write_text(example.dumps() + "\n")
        written.append(path)
    return written


def _replay(path: str) -> int:
    example = Counterexample.loads(Path(path).read_text())
    model = MODELS.get(example.model)
    if model is None:
        print(f"unknown model {example.model!r} in {path}", file=sys.stderr)
        return 2
    print(f"replaying {example.model} "
          f"(mutation={example.mutation or 'none'}, "
          f"trace={list(example.trace.choices)}"
          + (f", fault@{example.trace.fault.decision}"
             f" edge={example.trace.fault.edge}"
             if example.trace.fault else "")
          + ")")

    def run_it() -> "object":
        return run_schedule(model, example.trace)

    if example.mutation:
        with MUTATIONS[example.mutation]():
            outcome = run_it()
    else:
        outcome = run_it()
    if outcome.violations:
        print(f"reproduced: {len(outcome.violations)} violation(s)")
        for violation in outcome.violations:
            print(violation.describe())
        return 0
    print("did NOT reproduce — schedule ran clean", file=sys.stderr)
    return 1


def _select_models(args: argparse.Namespace) -> list[CheckModel]:
    if args.all or (not args.models and args.mutate is None):
        return [m for m in MODELS.values() if "ci" in m.tags]
    if args.mutate is not None and not args.models:
        return [MODELS[MUTATION_TARGETS[args.mutate]]]
    selected = []
    for name in args.models:
        if name not in MODELS:
            raise SystemExit(
                f"unknown model {name!r}; try --list")
        selected.append(MODELS[name])
    return selected


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        _list_everything()
        return 0
    if args.replay:
        return _replay(args.replay)
    if args.mutate is not None and args.mutate not in MUTATIONS:
        raise SystemExit(f"unknown mutation {args.mutate!r}; try --list")

    settings = CheckSettings(
        horizon_us=args.horizon_us,
        max_steps=args.max_steps,
        track_footprints=not args.no_dpor,
    )
    reports: list[ExploreReport] = []
    found_violation = False
    for model in _select_models(args):
        report = explore(
            model,
            budget=args.budget,
            dpor=not args.no_dpor,
            faults=not args.no_faults,
            stop_on_first=args.stop_on_first or args.expect_violation,
            settings=settings,
            mutation=args.mutate,
        )
        reports.append(report)
        print(report.summary())
        expected = model.expect_violation or args.expect_violation
        if report.violations and not expected:
            for violation in report.violations:
                print(violation.describe())
        if report.violations_total:
            found_violation = True
        if args.save_traces:
            for path in _save_counterexamples(
                    report, Path(args.save_traces), args.mutate):
                print(f"  wrote {path}")

    if args.as_json:
        print(json.dumps([{
            "model": r.model,
            "mutation": r.mutation,
            "explored": r.explored,
            "pruned": r.pruned,
            "expanded": r.expanded,
            "prune_ratio": r.prune_ratio,
            "fault_branches": r.fault_branches,
            "exhausted": r.exhausted,
            "violations": r.violations_total,
        } for r in reports]))

    if args.expect_violation:
        if found_violation:
            print("violation found, as expected")
            return 0
        print("NO violation found (harness failed to bite)",
              file=sys.stderr)
        return 1

    # Positive-control models (expect_violation=True) must fail;
    # everything else must be clean.
    bad = False
    for report, model in zip(reports,
                             [MODELS[r.model] for r in reports]):
        if model.expect_violation and not report.violations_total:
            print(f"{model.name}: expected a violation, found none",
                  file=sys.stderr)
            bad = True
        elif not model.expect_violation and report.violations_total:
            bad = True
        if args.require_exhaustive and not report.exhausted:
            print(f"{model.name}: frontier not exhausted within budget "
                  f"{report.budget} (explored {report.explored})",
                  file=sys.stderr)
            bad = True
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
