"""DFS schedule exploration with dynamic partial-order reduction.

The exploration tree is rooted at the empty trace (the default
schedule).  Executing a trace records the full decision log; the
explorer then *expands* it: for every decision at or beyond the forced
prefix, each untaken candidate becomes a child trace whose choices are
the recorded prefix up to that decision plus the alternative index.
Because every child differs from its parent exactly at its last forced
choice, the tree enumerates each schedule at most once.

**DPOR pruning.**  Before pushing an alternative, the explorer asks
whether taking it could possibly lead anywhere new.  The alternative
candidate event also executed *later* in the recorded run (almost
always: a tie loser stays queued); if its step's footprint is
independent of every step executed between the decision and its own
execution, then the alternative order is a commutation of the observed
one — same resulting state, isomorphic subtree — and the branch is
pruned.  Footprints over-approximate effects (see
:mod:`repro.check.footprint`), so pruning is conservative: imprecision
costs explored schedules, never coverage.

**Fault branching.**  For models with ``fault_edges``, the fault-free
root run's decision log defines the reachable injection instants: one
child per (edge, decision index) severs that cable exactly when the
scheduler reaches that decision.  Fault children then expand through
choice branching like any other node, exploring schedule nondeterminism
*after* the fault too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .models import CheckModel
from .policy import ExplorationPolicy
from .runner import CheckSettings, RunOutcome, Violation, run_schedule
from .trace import FaultPoint, ScheduleTrace

__all__ = ["ExploreReport", "explore"]

#: an alternative whose execution lies further than this many steps past
#: its decision is never pruned (bounds the commutation scan).
_DPOR_WINDOW = 4_000

#: cap on per-model fault injection points (decision indices) per edge.
_MAX_FAULT_POINTS = 48


@dataclass
class ExploreReport:
    """Aggregate result of exploring one model."""

    model: str
    mutation: Optional[str]
    explored: int = 0
    pruned: int = 0
    expanded: int = 0
    max_decisions: int = 0
    total_steps: int = 0
    fault_branches: int = 0
    #: True when the DFS frontier emptied within budget (with DPOR on,
    #: "exhaustive modulo commutation of independent steps").
    exhausted: bool = False
    budget: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: violations beyond the retention cap are counted, not stored.
    violations_total: int = 0

    @property
    def prune_ratio(self) -> float:
        considered = self.pruned + self.expanded
        return self.pruned / considered if considered else 0.0

    def summary(self) -> str:
        status = "exhausted" if self.exhausted else "budget-capped"
        mut = f" mutation={self.mutation}" if self.mutation else ""
        return (
            f"{self.model}{mut}: {self.explored} schedules explored "
            f"({status}, budget {self.budget}), {self.pruned} pruned / "
            f"{self.expanded} branched (DPOR {self.prune_ratio:.0%}), "
            f"{self.fault_branches} fault branches, "
            f"{self.violations_total} violation(s)"
        )


def _can_prune(policy: ExplorationPolicy,
               positions: dict[int, list[int]],
               decision_index: int, candidate_pos: int) -> bool:
    """True iff the alternative provably commutes with the steps that ran
    between its decision and its own (later) execution."""
    decision = policy.decisions[decision_index]
    alt_event = policy.candidates[decision_index][candidate_pos]
    alt_positions = positions.get(id(alt_event))
    if not alt_positions:
        return False  # never executed: cannot reason about it
    exec_pos = None
    for position in alt_positions:
        if position >= decision.step_index:
            exec_pos = position
            break
    if exec_pos is None or exec_pos - decision.step_index > _DPOR_WINDOW:
        return False
    alt_footprint = policy.steps[exec_pos][1]
    steps = policy.steps
    for position in range(decision.step_index, exec_pos):
        if alt_footprint.conflicts(steps[position][1]):
            return False
    return True


def explore(model: CheckModel, *,
            budget: Optional[int] = None,
            dpor: bool = True,
            faults: bool = True,
            stop_on_first: bool = False,
            settings: Optional[CheckSettings] = None,
            mutation: Optional[str] = None,
            keep_violations: int = 16) -> ExploreReport:
    """Explore ``model``'s schedule space within ``budget`` executions."""
    if settings is None:
        settings = CheckSettings(track_footprints=dpor)
    if budget is None:
        budget = model.default_budget
    report = ExploreReport(model=model.name, mutation=mutation,
                           budget=budget)

    if mutation is not None:
        from .mutations import MUTATIONS
        mutate = MUTATIONS[mutation]
    else:
        mutate = None

    def execute(trace: ScheduleTrace) -> RunOutcome:
        if mutate is None:
            return run_schedule(model, trace, settings)
        with mutate():
            return run_schedule(model, trace, settings)

    stack: list[ScheduleTrace] = [ScheduleTrace()]
    seen: set[tuple] = set()

    while stack:
        if report.explored >= budget:
            return report
        trace = stack.pop()
        key = (trace.choices, trace.fault)
        if key in seen:
            continue
        seen.add(key)

        outcome = execute(trace)
        report.explored += 1
        report.total_steps += outcome.steps
        policy = outcome.policy
        report.max_decisions = max(report.max_decisions,
                                   len(policy.decisions))
        if outcome.violations:
            report.violations_total += len(outcome.violations)
            room = keep_violations - len(report.violations)
            report.violations.extend(outcome.violations[:max(room, 0)])
            if stop_on_first:
                return report
            # A broken schedule's suffix is not worth expanding: the
            # recorded decisions past the failure describe a wedged run.
            continue

        positions = policy.step_positions() if dpor else {}
        recorded = policy.recorded

        # -------------------------------------------------- choice branches
        for index in range(len(trace.choices), len(policy.decisions)):
            decision = policy.decisions[index]
            for alternative in range(decision.n_candidates):
                if alternative == decision.chosen:
                    continue
                if dpor and _can_prune(policy, positions, index,
                                       alternative):
                    report.pruned += 1
                    continue
                report.expanded += 1
                stack.append(ScheduleTrace(
                    choices=recorded[:index] + (alternative,),
                    fault=trace.fault,
                ))

        # --------------------------------------------------- fault branches
        if (faults and model.fault_edges and trace.fault is None
                and not trace.choices):
            window = model.fault_window_us
            eligible = [
                d.index for d in policy.decisions
                if window is None or window[0] <= d.time <= window[1]
            ]
            if len(eligible) > _MAX_FAULT_POINTS:
                # Spread the capped injection points evenly over the
                # window rather than clustering them at its start.
                stride = len(eligible) / _MAX_FAULT_POINTS
                eligible = [eligible[int(k * stride)]
                            for k in range(_MAX_FAULT_POINTS)]
            for edge in model.fault_edges:
                for index in eligible:
                    report.fault_branches += 1
                    stack.append(ScheduleTrace(
                        choices=recorded[:index],
                        fault=FaultPoint(decision=index, edge=edge),
                    ))

    report.exhausted = True
    return report
