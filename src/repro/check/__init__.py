"""ShmemCheck: systematic schedule and fault-point exploration.

The deterministic simulator makes every run reproducible, but a single
schedule only ever witnesses one interleaving of the protocol.  ShmemCheck
turns the determinism into a *stateless model checker*: a recording
:class:`~repro.sim.SchedulePolicy` captures every point where the event
heap held a genuine tie, a DFS explorer re-executes the program forcing
each alternative in turn, and a dynamic partial-order reduction (DPOR)
pass prunes branches whose steps provably commute.  Every violation comes
back with a :class:`~repro.check.trace.ScheduleTrace` that replays it
bit-for-bit (``python -m repro.check --replay <file>``).

Checkers run against every explored schedule:

* wait-for-graph cycles (:mod:`repro.core.waitgraph`) — true deadlock;
* event-queue drain before program completion — wedged schedule;
* virtual-time horizon / step-budget exhaustion — livelock and lost
  wakeups, reported with the blocked primitives and open ShmemScope spans;
* post-run quiescence: no leaked wait registrations, services idle,
  aligned barrier generations;
* the NTB hardware invariants (:mod:`repro.analysis.invariants`) and
  ShmemSan race reports on every terminal state.

See ``docs/CHECKING.md`` for the tour and ``repro.check.models`` for the
bundled protocol models the CI job explores exhaustively.
"""

from .explorer import ExploreReport, explore
from .models import MODELS, CheckModel
from .mutations import MUTATIONS
from .runner import CheckSettings, RunOutcome, Violation, run_schedule
from .trace import FaultPoint, ScheduleTrace

__all__ = [
    "CheckModel",
    "CheckSettings",
    "ExploreReport",
    "FaultPoint",
    "MODELS",
    "MUTATIONS",
    "RunOutcome",
    "ScheduleTrace",
    "Violation",
    "explore",
    "run_schedule",
]
