"""The recording/replaying :class:`~repro.sim.SchedulePolicy`.

One :class:`ExplorationPolicy` drives one execution.  It plays back the
forced choice prefix of a :class:`~repro.check.trace.ScheduleTrace`
(taking the default candidate 0 beyond it), fires the fault injection
when its decision index comes due, and records everything the explorer
needs afterwards:

* the :class:`Decision` log — where ties occurred, how wide they were,
  and which step of the run they happened at;
* strong references to every tie's candidate events, so alternatives can
  be identified again when the run ends;
* the per-step :class:`~repro.check.footprint.Footprint` sequence that
  the DPOR pass uses to decide which alternatives commute.

The footprint accumulator rotates in the environment's step hook: the
hook runs before the step's callbacks, so everything probed between two
hook calls belongs to the earlier step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Environment, Event, SchedulePolicy
from .footprint import Footprint, domains_of
from .trace import FaultPoint, ScheduleTrace

__all__ = ["Decision", "ExplorationPolicy"]


class ScheduleDiverged(Exception):
    """A forced choice did not fit the decision it was replayed into."""


@dataclass
class Decision:
    """One genuine tie on the event heap."""

    index: int
    time: float
    priority: int
    step_index: int
    n_candidates: int
    chosen: int
    labels: tuple[str, ...]


def _label(event: Event) -> str:
    name = getattr(event, "name", None)
    if name:
        return str(name)
    return type(event).__name__


class ExplorationPolicy(SchedulePolicy):
    """Record decisions and per-step footprints while forcing a prefix."""

    def __init__(self, trace: ScheduleTrace,
                 inject: Optional[Callable[[FaultPoint], None]] = None,
                 track_footprints: bool = True) -> None:
        self.trace = trace
        self.forced = trace.choices
        self.fault = trace.fault
        self._inject = inject
        self._fault_fired = False
        self.track_footprints = track_footprints

        self.env: Optional[Environment] = None
        self.decisions: list[Decision] = []
        #: strong refs: candidate events per decision (ids stay valid).
        self.candidates: list[list[Event]] = []
        #: per-step (event id, footprint), in execution order.
        self.steps: list[tuple[int, Footprint]] = []
        self._current: Optional[Footprint] = None
        self._current_event_id: int = 0
        #: events scheduled during the current step, with the process
        #: active at schedule time.  Domains resolve at flush time: a
        #: Process scheduled from its own __init__ has no name *yet*.
        self._current_scheduled: list[tuple[Event, Optional[Event]]] = []
        self.diverged = False

    # ------------------------------------------------------------- lifecycle
    def bind(self, env: Environment) -> None:
        """Attach to the environment (step-hook registration)."""
        self.env = env
        if self.track_footprints:
            env.step_hooks.append(self._on_step)

    def _on_step(self, env: Environment, event: Event) -> None:
        self._flush()
        footprint = Footprint()
        footprint.add_domains(*domains_of(event))
        self._current = footprint
        self._current_event_id = id(event)

    def _flush(self) -> None:
        if self._current is None:
            return
        for event, active in self._current_scheduled:
            domains, opaque = domains_of(event)
            if not domains and not opaque and active is not None:
                # A bare event with no callbacks (a fresh Timeout):
                # charge it to the process that created it.
                domains, opaque = domains_of(active)
            self._current.add_domains(domains, opaque)
        self._current_scheduled.clear()
        self.steps.append((self._current_event_id, self._current))
        self._current = None

    def finish(self) -> None:
        """Flush the footprint of the final step (end of run)."""
        self._flush()

    # ----------------------------------------------------- footprint feeding
    def note_access(self, key: object, is_write: bool) -> None:
        """Probe sink: a shared-hardware or heap-cell access this step."""
        if self._current is not None:
            self._current.note(key, is_write)

    def accessed(self, key: object, is_write: bool) -> None:
        """The :class:`~repro.sim.SchedulePolicy` access hook (resources)."""
        self.note_access(key, is_write)

    def scheduled(self, now: float, priority: int, event: Event) -> None:
        """Attribute wakeups scheduled during this step to its footprint."""
        if self._current is None:
            return
        active = self.env.active_process if self.env is not None else None
        self._current_scheduled.append((event, active))

    # ------------------------------------------------------------- decisions
    def choose(self, now: float, priority: int,
               candidates: "list[Event]") -> int:
        index = len(self.decisions)
        if (self.fault is not None and not self._fault_fired
                and index >= self.fault.decision):
            self._fault_fired = True
            if self._inject is not None:
                self._inject(self.fault)
        if index < len(self.forced):
            choice = self.forced[index]
            if not 0 <= choice < len(candidates):
                # The model changed shape under the trace (different code
                # or mutation): record, clamp, and let the runner report.
                self.diverged = True
                choice = 0
        else:
            choice = 0
        # The step that is still accumulating (``_current``) flushes into
        # ``steps`` before the chosen candidate runs, so the chosen step
        # lands one past ``len(steps)`` — the commutation window must not
        # include the pre-decision step.
        step_index = len(self.steps) + (0 if self._current is None else 1)
        self.decisions.append(Decision(
            index=index, time=now, priority=priority,
            step_index=step_index, n_candidates=len(candidates),
            chosen=choice, labels=tuple(_label(c) for c in candidates),
        ))
        self.candidates.append(list(candidates))
        return choice

    # ------------------------------------------------------------- reporting
    @property
    def recorded(self) -> tuple[int, ...]:
        """The full choice vector this run actually took."""
        return tuple(d.chosen for d in self.decisions)

    def recorded_trace(self) -> ScheduleTrace:
        return ScheduleTrace(choices=self.recorded, fault=self.fault)

    def step_positions(self) -> dict[int, list[int]]:
        """Map event id -> positions in :attr:`steps` (ascending)."""
        out: dict[int, list[int]] = {}
        for position, (event_id, _fp) in enumerate(self.steps):
            out.setdefault(event_id, []).append(position)
        return out
