"""Execute one schedule of a model and run every checker against it.

``run_schedule(model, trace)`` is the deterministic re-execution core of
ShmemCheck: it stands up a fresh cluster with an
:class:`~repro.check.policy.ExplorationPolicy` installed, replays the
trace's forced choices (injecting its fault, if any), and drives the
simulation with explicit bounds instead of ``env.run`` — a wedged or
livelocked schedule must be *diagnosed*, not waited out.

Checkers, in the order they can fire:

1. **deadlock (cycle)** — after any step that mutated the wait-for
   graph, a cycle in the hold-and-wait projection is reported
   immediately, with the blocking primitives on the cycle;
2. **deadlock (drain)** — the event queue emptied before every PE
   finished: whatever the PEs are blocked on can no longer occur;
3. **liveness (horizon / step budget)** — virtual time or step count
   exceeded the model's bounds: a livelock or lost wakeup, reported with
   the currently blocked primitives and open ShmemScope spans;
4. **exceptions** — protocol errors, assertion failures and sanitizer
   strict-mode races surface as schedule failures with the trace;
5. **post-run quiescence** — leaked wait-graph registrations, barrier
   generation skew across PEs, services with queued work;
6. **terminal-state checks** — NTB hardware invariants
   (:func:`repro.analysis.invariants.check_cluster`), accumulated
   ShmemSan race reports, and the model's own result property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..analysis.invariants import check_cluster
from ..core.runtime import ShmemRuntime
from ..core.sanitizer import ShmemSan
from ..core.waitgraph import WaitGraph
from ..core.api import PE
from ..fabric import Cluster, ClusterConfig
from ..sim import AllOf, CountdownLatch, Environment
from .models import CheckModel
from .policy import ExplorationPolicy
from .trace import Counterexample, FaultPoint, ScheduleTrace

__all__ = ["CheckSettings", "RunOutcome", "Violation", "run_schedule"]


@dataclass(frozen=True)
class CheckSettings:
    """Per-run bounds and switches (model defaults unless overridden)."""

    horizon_us: Optional[float] = None
    max_steps: Optional[int] = None
    track_footprints: bool = True
    #: extra steps allowed for the post-completion queue drain.
    drain_steps: int = 20_000


@dataclass
class Violation:
    """One checker finding for one schedule."""

    kind: str
    detail: str
    time_us: float
    trace: ScheduleTrace
    blocked: list[str] = field(default_factory=list)
    open_spans: list[str] = field(default_factory=list)

    def counterexample(self, model: str,
                       mutation: Optional[str] = None) -> Counterexample:
        return Counterexample(
            model=model, trace=self.trace, kind=self.kind,
            detail=self.detail, mutation=mutation, time_us=self.time_us,
            blocked=self.blocked, open_spans=self.open_spans,
        )

    def describe(self) -> str:
        lines = [f"[{self.kind}] t={self.time_us:.1f}us: {self.detail}"]
        for entry in self.blocked:
            lines.append(f"    blocked: {entry}")
        for span in self.open_spans:
            lines.append(f"    open span: {span}")
        return "\n".join(lines)


@dataclass
class RunOutcome:
    """Everything the explorer needs from one executed schedule."""

    model: str
    violations: list[Violation]
    policy: ExplorationPolicy
    steps: int
    elapsed_us: float
    results: list[Any]
    completed: bool

    @property
    def ok(self) -> bool:
        return not self.violations

    def replay_trace(self) -> ScheduleTrace:
        return self.policy.recorded_trace().shrunk()


class _FootprintSan(ShmemSan):
    """ShmemSan that mirrors every checked access into the step footprint.

    Symmetric-heap effects are keyed by shadow cell — the same
    granularity the race detector uses — so DPOR's independence relation
    agrees with the sanitizer's notion of "touching the same data".
    """

    def __init__(self, n_pes: int, policy: ExplorationPolicy,
                 mode: str = "report", granularity: int = 8,
                 tracer: Any = None) -> None:
        super().__init__(n_pes, mode=mode, granularity=granularity,
                         tracer=tracer)
        self._policy = policy

    def _note(self, owner_pe: int, offset: int, nbytes: int,
              is_write: bool) -> None:
        first = offset // self.granularity
        last = (offset + max(nbytes, 1) - 1) // self.granularity
        for index in range(first, last + 1):
            self._policy.note_access(("cell", owner_pe, index), is_write)

    def record_write(self, origin_pe: int, owner_pe: int, offset: int,
                     nbytes: int, op: str, now: float,
                     kind: str = "write") -> None:
        self._note(owner_pe, offset, nbytes, True)
        super().record_write(origin_pe, owner_pe, offset, nbytes, op, now,
                             kind=kind)

    def record_read(self, origin_pe: int, owner_pe: int, offset: int,
                    nbytes: int, op: str, now: float) -> None:
        self._note(owner_pe, offset, nbytes, False)
        super().record_read(origin_pe, owner_pe, offset, nbytes, op, now)

    def sync_acquire(self, origin_pe: int, owner_pe: int, offset: int,
                     nbytes: int) -> None:
        self._note(owner_pe, offset, nbytes, False)
        super().sync_acquire(origin_pe, owner_pe, offset, nbytes)


def _install_probes(cluster: Cluster, policy: ExplorationPolicy) -> None:
    """Wire the shared-hardware access probes into the policy."""
    seen: set[int] = set()
    for driver in cluster.drivers():
        endpoint = driver.endpoint
        for device in (endpoint.doorbell, endpoint.spad):
            if device is None or id(device) in seen:
                continue
            seen.add(id(device))
            device.probe = policy.note_access
    for host in cluster.hosts:
        memory = getattr(host, "memory", None)
        if memory is not None and id(memory) not in seen:
            seen.add(id(memory))
            memory.probe = policy.note_access


def _blocked_summary(graph: WaitGraph, now: float) -> list[str]:
    return [
        f"PE {entry.pe}: {entry.what} "
        f"(for {now - entry.since:.1f}us"
        + (f", peer={entry.peer}" if entry.peer is not None else "")
        + (f", resource={entry.resource!r}"
           if entry.resource is not None else "")
        + ")"
        for entry in graph.blocked
    ]


def _open_span_summary(cluster: Cluster) -> list[str]:
    scope = getattr(cluster, "scope", None)
    if scope is None:
        return []
    spans = scope.open_spans()
    return [f"{span.track}:{span.name}" for span in spans[:16]]


def run_schedule(model: CheckModel, trace: ScheduleTrace,
                 settings: CheckSettings = CheckSettings()) -> RunOutcome:
    """Deterministically execute ``model`` under ``trace`` and check it."""
    horizon = settings.horizon_us or model.horizon_us
    max_steps = settings.max_steps or model.max_steps

    outcome_trace = trace  # replaced with the recorded trace once known
    violations: list[Violation] = []

    def found(kind: str, detail: str, *, now: float = 0.0,
              blocked: Optional[list[str]] = None,
              spans: Optional[list[str]] = None) -> None:
        violations.append(Violation(
            kind=kind, detail=detail, time_us=now,
            trace=outcome_trace,
            blocked=blocked or [], open_spans=spans or [],
        ))

    # ---------------------------------------------------------------- setup
    cluster_holder: dict[str, Cluster] = {}

    def inject(fault: FaultPoint) -> None:
        cluster_holder["cluster"].cable_between(*fault.edge).sever()

    policy = ExplorationPolicy(
        trace, inject=inject, track_footprints=settings.track_footprints)
    env = Environment(schedule_policy=policy)
    policy.bind(env)

    cluster = Cluster(ClusterConfig(n_hosts=model.n_pes), env=env)
    cluster_holder["cluster"] = cluster
    graph = WaitGraph()
    cluster.wait_graph = graph

    config = model.make_config()
    san = _FootprintSan(
        model.n_pes, policy, mode=config.sanitize or "report",
        granularity=config.sanitize_granularity, tracer=cluster.tracer)
    cluster.shmemsan = san
    _install_probes(cluster, policy)

    runtimes = [ShmemRuntime(cluster, pe_id, config)
                for pe_id in range(model.n_pes)]
    pes = [PE(rt) for rt in runtimes]
    results: list[Any] = [None] * model.n_pes
    init_latch = CountdownLatch(env, model.n_pes)
    exit_latch = CountdownLatch(env, model.n_pes)

    def pe_process(pe_id: int) -> Generator:
        runtime = runtimes[pe_id]
        yield from runtime.initialize()
        init_latch.count_down()
        yield init_latch.wait()  # launcher rendezvous, local  # lint: skip
        results[pe_id] = yield from model.main(pes[pe_id])
        exit_latch.count_down()
        yield exit_latch.wait()  # local rendezvous  # lint: skip
        yield from runtime.finalize()

    processes = [env.process(pe_process(pe_id), name=f"pe{pe_id}.main")
                 for pe_id in range(model.n_pes)]
    done = AllOf(env, processes)

    # ------------------------------------------------------------ main loop
    steps = 0
    graph_version = graph.version
    completed = False
    failed: Optional[BaseException] = None
    while not done.processed:
        if env.peek() == float("inf"):
            outcome_trace = policy.recorded_trace().shrunk()
            found("deadlock-drain",
                  "event queue drained before all PEs finished",
                  now=env.now,
                  blocked=_blocked_summary(graph, env.now),
                  spans=_open_span_summary(cluster))
            break
        if env.now > horizon:
            outcome_trace = policy.recorded_trace().shrunk()
            found("liveness-horizon",
                  f"no completion within {horizon:.0f}us of virtual time",
                  now=env.now,
                  blocked=_blocked_summary(graph, env.now),
                  spans=_open_span_summary(cluster))
            break
        if steps > max_steps:
            outcome_trace = policy.recorded_trace().shrunk()
            found("livelock-steps",
                  f"no completion within {max_steps} simulator steps",
                  now=env.now,
                  blocked=_blocked_summary(graph, env.now),
                  spans=_open_span_summary(cluster))
            break
        try:
            env.step()
        except BaseException as exc:  # noqa: BLE001 - report, don't mask
            failed = exc
            break
        steps += 1
        if graph.version != graph_version:
            graph_version = graph.version
            cycle = graph.find_cycle()
            if cycle is not None:
                outcome_trace = policy.recorded_trace().shrunk()
                found("deadlock-cycle",
                      f"wait-for cycle over PEs {cycle.pes}: "
                      f"{cycle.describe()}",
                      now=env.now,
                      blocked=_blocked_summary(graph, env.now),
                      spans=_open_span_summary(cluster))
                break
    else:
        completed = True

    policy.finish()
    outcome_trace = policy.recorded_trace().shrunk()
    for violation in violations:
        violation.trace = outcome_trace

    if failed is not None:
        found("exception", f"{type(failed).__name__}: {failed}",
              now=env.now,
              blocked=_blocked_summary(graph, env.now),
              spans=_open_span_summary(cluster))

    if policy.diverged:
        found("trace-divergence",
              "forced choice fell outside a decision's candidate set "
              "(model or mutation changed since the trace was recorded)",
              now=env.now)

    # ----------------------------------------------------------- post-run
    if completed:
        drain = 0
        while env.peek() != float("inf") and drain < settings.drain_steps:
            try:
                env.step()
            except BaseException as exc:  # noqa: BLE001
                found("exception",
                      f"post-completion: {type(exc).__name__}: {exc}",
                      now=env.now)
                break
            drain += 1
        if env.peek() != float("inf"):
            found("quiescence",
                  f"event queue still busy {settings.drain_steps} steps "
                  "after program completion", now=env.now)

        if graph.blocked:
            found("unreleased-wait",
                  "wait-graph entries leaked past completion",
                  now=env.now, blocked=_blocked_summary(graph, env.now))

        generations = {rt.my_pe_id: rt.barrier.generation
                       for rt in runtimes}
        if len(set(generations.values())) > 1:
            found("barrier-divergence",
                  f"PEs retired different barrier generations: "
                  f"{generations}", now=env.now)

        for problem in check_cluster(cluster, strict=False):
            if trace.fault is not None and problem.rule == "span-unbalanced":
                # A sever legitimately strands in-flight spans: the send
                # was traced, then the cable ate the packet.  Span
                # balance is only a promise of the fault-free fabric.
                continue
            found("invariant", problem.describe(), now=env.now)

        for report in san.reports:
            found("race", report.describe(), now=env.now)

        if model.check_results is not None:
            for problem in model.check_results(results):
                found("property", problem, now=env.now)

    return RunOutcome(
        model=model.name,
        violations=violations,
        policy=policy,
        steps=steps,
        elapsed_us=env.now,
        results=results,
        completed=completed,
    )
