"""Host memory substrate: physical memory, region allocation, virtual maps."""

from .address_space import (
    AccessFault,
    MemoryError_,
    PhysicalMemory,
    Region,
    copy_between,
)
from .allocator import Allocation, AllocationError, RegionAllocator
from .mmu import DEFAULT_PAGE_SIZE, Mapping, PhysSegment, VirtualAddressSpace

__all__ = [
    "AccessFault",
    "MemoryError_",
    "PhysicalMemory",
    "Region",
    "copy_between",
    "Allocation",
    "AllocationError",
    "RegionAllocator",
    "DEFAULT_PAGE_SIZE",
    "Mapping",
    "PhysSegment",
    "VirtualAddressSpace",
]
