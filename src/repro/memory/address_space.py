"""Physical memory model: a flat byte-addressable space backed by NumPy.

Each simulated host owns one :class:`PhysicalMemory`.  Every data movement in
the reproduction — CPU memcpy, PIO through an NTB window, DMA transfers —
ultimately lands here, so data-integrity properties of the OpenSHMEM layer
are checked against real bytes, not placeholders.

Addresses are plain integers (byte offsets).  Reads return *copies* by
default; in-place views are available for zero-copy fast paths where the
caller guarantees it will not alias (mirrors the guide's "views, not copies"
advice while keeping correctness-by-default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

import numpy as np

__all__ = ["MemoryError_", "AccessFault", "Region", "PhysicalMemory"]

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]


class MemoryError_(Exception):
    """Base class for memory-model errors (named to avoid shadowing the
    builtin ``MemoryError``)."""


class AccessFault(MemoryError_):
    """Out-of-bounds or overlapping-region access."""


@dataclass(frozen=True)
class Region:
    """A named, half-open address range ``[base, base + size)``."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size < 0:
            raise ValueError(f"negative base/size in region {self.name!r}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end

    def offset_of(self, addr: int) -> int:
        if not self.contains(addr):
            raise AccessFault(
                f"address {addr:#x} outside region {self.name!r} "
                f"[{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Region {self.name} [{self.base:#x}, {self.end:#x})>"


class PhysicalMemory:
    """Flat byte-addressable physical memory with named carve-out regions.

    Parameters
    ----------
    size:
        Total bytes of DRAM modelled.
    name:
        Owner label used in fault messages (e.g. ``"host0.dram"``).
    fill:
        Initial byte value; a non-zero poison value helps tests catch reads
        of never-written memory.
    """

    def __init__(self, size: int, name: str = "dram", fill: int = 0):
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.name = name
        self.size = size
        # np.zeros is calloc-backed (lazy pages) — meaningfully faster for
        # the default fill when simulating many multi-hundred-MB hosts.
        self._data = np.zeros(size, dtype=np.uint8) if fill == 0 \
            else np.full(size, fill, dtype=np.uint8)
        self._regions: dict[str, Region] = {}
        #: optional access probe installed by analysis tooling; receives
        #: ``(("mem", name, page), is_write)`` per 4 KiB page touched.
        #: ``None`` (the default) costs one attribute test per access.
        self.probe = None

    # -- region bookkeeping ---------------------------------------------------
    def add_region(self, name: str, base: int, size: int,
                   allow_overlap: bool = False) -> Region:
        """Register a named carve-out; rejects overlaps unless allowed."""
        region = Region(name, base, size)
        if region.end > self.size:
            raise AccessFault(
                f"region {name!r} [{base:#x}, {region.end:#x}) exceeds "
                f"{self.name} size {self.size:#x}"
            )
        if name in self._regions:
            raise MemoryError_(f"duplicate region name {name!r}")
        if not allow_overlap:
            for other in self._regions.values():
                if region.overlaps(other):
                    raise AccessFault(
                        f"region {name!r} overlaps {other.name!r}"
                    )
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(
                f"{self.name} has no region named {name!r}"
            ) from None

    def regions(self) -> Iterator[Region]:
        return iter(self._regions.values())

    # -- raw access ------------------------------------------------------------
    def _probe_range(self, addr: int, nbytes: int, is_write: bool) -> None:
        probe = self.probe
        if probe is None or nbytes <= 0:
            return
        for page in range(addr >> 12, ((addr + nbytes - 1) >> 12) + 1):
            probe(("mem", self.name, page), is_write)

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise AccessFault(
                f"{self.name}: access [{addr:#x}, {addr + nbytes:#x}) "
                f"outside [0, {self.size:#x})"
            )

    def read(self, addr: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` starting at ``addr`` (uint8 array)."""
        self._check(addr, nbytes)
        self._probe_range(addr, nbytes, False)
        return self._data[addr:addr + nbytes].copy()

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, nbytes)
        self._probe_range(addr, nbytes, False)
        return self._data[addr:addr + nbytes].tobytes()

    def write(self, addr: int, data: BytesLike) -> int:
        """Write ``data`` at ``addr``; returns number of bytes written."""
        buf = np.frombuffer(memoryview(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data.view(np.uint8).reshape(-1)
        nbytes = buf.size
        self._check(addr, nbytes)
        self._probe_range(addr, nbytes, True)
        self._data[addr:addr + nbytes] = buf
        return nbytes

    def fill(self, addr: int, nbytes: int, value: int) -> None:
        self._check(addr, nbytes)
        self._probe_range(addr, nbytes, True)
        self._data[addr:addr + nbytes] = np.uint8(value)

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        """Zero-copy mutable view (caller must not hold across resizes)."""
        self._check(addr, nbytes)
        # A mutable view may be written through: treat as a write.
        self._probe_range(addr, nbytes, True)
        return self._data[addr:addr + nbytes]

    # -- typed helpers (register-style accesses) -------------------------------
    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        self._probe_range(addr, 4, False)
        return int(self._data[addr:addr + 4].view(np.uint32)[0])

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self._probe_range(addr, 4, True)
        self._data[addr:addr + 4].view(np.uint32)[0] = np.uint32(value & 0xFFFFFFFF)

    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        self._probe_range(addr, 8, False)
        return int(self._data[addr:addr + 8].view(np.uint64)[0])

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        self._probe_range(addr, 8, True)
        self._data[addr:addr + 8].view(np.uint64)[0] = np.uint64(value)

    def copy_within(self, src: int, dst: int, nbytes: int) -> None:
        """memmove-style local copy handling overlap correctly."""
        self._check(src, nbytes)
        self._check(dst, nbytes)
        self._probe_range(src, nbytes, False)
        self._probe_range(dst, nbytes, True)
        chunk = self._data[src:src + nbytes].copy()
        self._data[dst:dst + nbytes] = chunk

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhysicalMemory {self.name} size={self.size:#x} " \
               f"regions={len(self._regions)}>"


def copy_between(src_mem: PhysicalMemory, src_addr: int,
                 dst_mem: PhysicalMemory, dst_addr: int,
                 nbytes: int) -> None:
    """Functional data movement between two physical memories.

    Timing is *not* modelled here — link/DMA/CPU models charge virtual time
    and then call this to realize the bytes.
    """
    dst_mem.write(dst_addr, src_mem.view(src_addr, nbytes))
