"""Virtual address spaces: contiguous virtual ranges over scattered pages.

The paper's symmetric heap (§III-B.2, Fig. 3a) is built from fixed-size
chunks obtained via anonymous ``mmap`` and *virtually concatenated*: the
user-level addresses are contiguous while the backing physical memory is
scattered.  This module models exactly that:

* :class:`VirtualAddressSpace` — per-process mapping of contiguous virtual
  ranges onto physical extents of a :class:`~repro.memory.address_space.PhysicalMemory`.
* :meth:`VirtualAddressSpace.phys_segments` — the segment walk used by the
  DMA engine: a virtually contiguous transfer from paged memory fragments
  into one DMA descriptor **per physical page**, which is the mechanism
  behind the OpenSHMEM Put bandwidth ceiling relative to the raw NTB rate
  (DESIGN.md §5).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .address_space import AccessFault, PhysicalMemory

__all__ = ["Mapping", "PhysSegment", "VirtualAddressSpace"]

DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class Mapping:
    """One contiguous virtual range backed by one contiguous physical extent."""

    virt_base: int
    phys_base: int
    size: int

    @property
    def virt_end(self) -> int:
        return self.virt_base + self.size

    def translate(self, virt: int) -> int:
        if not (self.virt_base <= virt < self.virt_end):
            raise AccessFault(f"virt {virt:#x} outside mapping {self}")
        return self.phys_base + (virt - self.virt_base)


@dataclass(frozen=True)
class PhysSegment:
    """A physically contiguous piece of a virtual transfer."""

    phys_addr: int
    nbytes: int


class VirtualAddressSpace:
    """Sorted, non-overlapping set of :class:`Mapping` ranges.

    Translation faults raise :class:`AccessFault` — unmapped access is a
    model bug, never silent.
    """

    def __init__(self, memory: PhysicalMemory, name: str = "vas",
                 page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 1 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.memory = memory
        self.name = name
        self.page_size = page_size
        self._mappings: list[Mapping] = []  # sorted by virt_base
        self._virt_bases: list[int] = []

    # -- mapping management -----------------------------------------------------
    def map(self, virt_base: int, phys_base: int, size: int) -> Mapping:
        """Install a mapping; rejects any virtual overlap."""
        if size <= 0:
            raise ValueError(f"mapping size must be positive, got {size}")
        if phys_base < 0 or phys_base + size > self.memory.size:
            raise AccessFault(
                f"{self.name}: physical extent [{phys_base:#x}, "
                f"{phys_base + size:#x}) outside {self.memory.name}"
            )
        mapping = Mapping(virt_base, phys_base, size)
        idx = bisect_right(self._virt_bases, virt_base)
        if idx > 0:
            prev = self._mappings[idx - 1]
            if prev.virt_end > virt_base:
                raise AccessFault(
                    f"{self.name}: mapping at {virt_base:#x} overlaps {prev}"
                )
        if idx < len(self._mappings):
            nxt = self._mappings[idx]
            if mapping.virt_end > nxt.virt_base:
                raise AccessFault(
                    f"{self.name}: mapping at {virt_base:#x} overlaps {nxt}"
                )
        self._mappings.insert(idx, mapping)
        self._virt_bases.insert(idx, virt_base)
        return mapping

    def unmap(self, virt_base: int) -> Mapping:
        idx = bisect_right(self._virt_bases, virt_base) - 1
        if idx < 0 or self._mappings[idx].virt_base != virt_base:
            raise AccessFault(f"{self.name}: no mapping at {virt_base:#x}")
        self._virt_bases.pop(idx)
        return self._mappings.pop(idx)

    @property
    def mappings(self) -> tuple[Mapping, ...]:
        return tuple(self._mappings)

    def _find(self, virt: int) -> Mapping:
        idx = bisect_right(self._virt_bases, virt) - 1
        if idx < 0:
            raise AccessFault(f"{self.name}: unmapped virt {virt:#x}")
        mapping = self._mappings[idx]
        if virt >= mapping.virt_end:
            raise AccessFault(f"{self.name}: unmapped virt {virt:#x}")
        return mapping

    # -- translation ---------------------------------------------------------------
    def translate(self, virt: int) -> int:
        """Virtual byte address -> physical byte address."""
        return self._find(virt).translate(virt)

    def extents(self, virt: int, nbytes: int) -> Iterator[PhysSegment]:
        """Walk ``[virt, virt+nbytes)`` yielding physically contiguous
        extents (split only at mapping boundaries)."""
        remaining = nbytes
        cursor = virt
        while remaining > 0:
            mapping = self._find(cursor)
            take = min(remaining, mapping.virt_end - cursor)
            yield PhysSegment(mapping.translate(cursor), take)
            cursor += take
            remaining -= take

    def phys_segments(self, virt: int, nbytes: int) -> Iterator[PhysSegment]:
        """Like :meth:`extents` but additionally split at page boundaries.

        This is the scatter/gather list a DMA engine would be given for
        paged (non-pinned) user memory: one descriptor per page.
        """
        for ext in self.extents(virt, nbytes):
            addr, left = ext.phys_addr, ext.nbytes
            while left > 0:
                page_end = (addr // self.page_size + 1) * self.page_size
                take = min(left, page_end - addr)
                yield PhysSegment(addr, take)
                addr += take
                left -= take

    # -- data access ------------------------------------------------------------------
    def read(self, virt: int, nbytes: int) -> np.ndarray:
        """Gather a copy of virtually contiguous bytes."""
        out = np.empty(nbytes, dtype=np.uint8)
        offset = 0
        for seg in self.extents(virt, nbytes):
            out[offset:offset + seg.nbytes] = self.memory.view(
                seg.phys_addr, seg.nbytes
            )
            offset += seg.nbytes
        return out

    def write(self, virt: int, data: bytes | bytearray | np.ndarray) -> int:
        """Scatter bytes into a virtually contiguous range."""
        buf = np.frombuffer(memoryview(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data.view(np.uint8).reshape(-1)
        offset = 0
        for seg in self.extents(virt, buf.size):
            self.memory.write(seg.phys_addr, buf[offset:offset + seg.nbytes])
            offset += seg.nbytes
        return buf.size

    def is_mapped(self, virt: int, nbytes: int = 1) -> bool:
        try:
            for _seg in self.extents(virt, nbytes):
                pass
            return True
        except AccessFault:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualAddressSpace {self.name} mappings={len(self._mappings)}>"
