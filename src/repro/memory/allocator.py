"""First-fit region allocator with coalescing free list.

Used twice in the reproduction:

* carving physical DRAM into driver buffers, NTB window backing stores and
  symmetric-heap chunks on each host;
* the symmetric-heap *offset* allocator in :mod:`repro.core.heap` (every PE
  must hand out identical offsets for identical allocation sequences — the
  determinism of this allocator is what makes that invariant hold, and the
  property tests hammer it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["AllocationError", "Allocation", "RegionAllocator"]


class AllocationError(Exception):
    """Out of space, double free, or bad alignment request."""


@dataclass(frozen=True)
class Allocation:
    """A granted block ``[base, base + size)``."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class RegionAllocator:
    """First-fit allocator over ``[base, base + size)`` with free coalescing.

    The free list is kept sorted by address; allocation scans first-fit,
    splitting blocks, and ``free`` merges adjacent blocks.  All sizes are
    rounded up to ``granularity`` so fragmentation behaviour is deterministic.
    """

    def __init__(self, base: int, size: int, granularity: int = 16,
                 name: str = "alloc"):
        if size <= 0:
            raise ValueError(f"allocator size must be positive, got {size}")
        if granularity < 1 or granularity & (granularity - 1):
            raise ValueError(
                f"granularity must be a power of two, got {granularity}"
            )
        self.base = base
        self.size = size
        self.granularity = granularity
        self.name = name
        # Sorted list of free (base, size) blocks.
        self._free: list[tuple[int, int]] = [(base, size)]
        self._live: dict[int, int] = {}  # base -> size

    # -- queries ---------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(size for _base, size in self._free)

    @property
    def used_bytes(self) -> int:
        return self.size - self.free_bytes

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def largest_free_block(self) -> int:
        return max((size for _b, size in self._free), default=0)

    def iter_free(self) -> Iterator[tuple[int, int]]:
        return iter(self._free)

    # -- alloc / free -------------------------------------------------------------
    def alloc(self, nbytes: int, alignment: int = 1) -> Allocation:
        """Allocate ``nbytes`` (rounded to granularity) at ``alignment``.

        Raises :class:`AllocationError` when no free block fits.
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be > 0, got {nbytes}")
        if alignment < 1 or alignment & (alignment - 1):
            raise AllocationError(
                f"alignment must be a power of two, got {alignment}"
            )
        want = _align_up(nbytes, self.granularity)
        for index, (blk_base, blk_size) in enumerate(self._free):
            start = _align_up(blk_base, alignment)
            pad = start - blk_base
            if blk_size < pad + want:
                continue
            # Split: [blk_base, start) stays free, [start, start+want) is
            # allocated, remainder stays free.
            tail_base = start + want
            tail_size = blk_size - pad - want
            replacement: list[tuple[int, int]] = []
            if pad:
                replacement.append((blk_base, pad))
            if tail_size:
                replacement.append((tail_base, tail_size))
            self._free[index:index + 1] = replacement
            self._live[start] = want
            return Allocation(start, want)
        raise AllocationError(
            f"{self.name}: cannot allocate {nbytes} bytes "
            f"(aligned {want}, free {self.free_bytes}, "
            f"largest block {self.largest_free_block()})"
        )

    def free(self, allocation: Allocation | int) -> None:
        """Return a block; coalesces with adjacent free blocks."""
        base = allocation.base if isinstance(allocation, Allocation) else allocation
        size = self._live.pop(base, None)
        if size is None:
            raise AllocationError(
                f"{self.name}: free of unallocated base {base:#x}"
            )
        # Insert keeping sort order, then coalesce neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < base:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (base, size))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        # Merge with next.
        if index + 1 < len(self._free):
            base, size = self._free[index]
            nbase, nsize = self._free[index + 1]
            if base + size == nbase:
                self._free[index:index + 2] = [(base, size + nsize)]
        # Merge with previous.
        if index > 0:
            pbase, psize = self._free[index - 1]
            base, size = self._free[index]
            if pbase + psize == base:
                self._free[index - 1:index + 1] = [(pbase, psize + size)]

    def reset(self) -> None:
        """Drop all allocations (used on shmem_finalize)."""
        self._free = [(self.base, self.size)]
        self._live.clear()

    def check_invariants(self) -> None:
        """Assert structural invariants (exercised by property tests)."""
        prev_end: Optional[int] = None
        for blk_base, blk_size in self._free:
            assert blk_size > 0, "empty free block"
            assert blk_base >= self.base
            assert blk_base + blk_size <= self.base + self.size
            if prev_end is not None:
                assert blk_base > prev_end, "free list unsorted/uncoalesced"
            prev_end = blk_base + blk_size
        total = self.free_bytes + sum(self._live.values())
        assert total == self.size, "bytes leaked or duplicated"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RegionAllocator {self.name} used={self.used_bytes} "
            f"free={self.free_bytes} live={len(self._live)}>"
        )
