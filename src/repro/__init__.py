"""repro — OpenSHMEM over a switchless PCIe NTB ring, reproduced in simulation.

A faithful, laptop-scale reproduction of Lim, Park & Cha, *"Developing an
OpenSHMEM Model over a Switchless PCIe Non-Transparent Bridge Interface"*
(IPDPSW 2019).  The real prototype needs PLX PEX87xx NTB adapters; this
package substitutes a register-accurate NTB/PCIe/host model running on a
deterministic discrete-event simulator (virtual microseconds), with the
OpenSHMEM runtime implemented exactly as the paper describes.

Quick start::

    import numpy as np
    from repro import run_spmd

    def main(pe):
        sym = yield from pe.malloc_array(16, np.int64)
        right = (pe.my_pe() + 1) % pe.num_pes()
        yield from pe.put_array(sym, np.full(16, pe.my_pe()), right)
        yield from pe.barrier_all()
        return pe.read_symmetric_array(sym, 16, np.int64).tolist()

    report = run_spmd(main, n_pes=3)
    print(report.results, f"{report.elapsed_us:.0f} virtual us")

Layers (bottom-up): :mod:`repro.sim` (event kernel), :mod:`repro.memory`,
:mod:`repro.pcie`, :mod:`repro.ntb`, :mod:`repro.host`, :mod:`repro.fabric`
(the substrates), :mod:`repro.core` (the paper's contribution) and
:mod:`repro.bench` (the Fig. 8/9/10 harnesses).
"""

from .core import (
    PE,
    AmoOp,
    HeapConfig,
    LocalBuffer,
    Mode,
    RaceError,
    RaceReport,
    ShmemConfig,
    ShmemError,
    ShmemSan,
    SpmdReport,
    SymAddr,
    render_race_table,
    run_spmd,
)
from .fabric import Cluster, ClusterConfig, Direction, RoutingPolicy
from .host import CostModel, HostConfig
from .ntb import DmaConfig, NtbPortConfig
from .pcie import LinkConfig

__version__ = "1.0.0"

__all__ = [
    "PE",
    "AmoOp",
    "HeapConfig",
    "LocalBuffer",
    "Mode",
    "RaceError",
    "RaceReport",
    "ShmemConfig",
    "ShmemError",
    "ShmemSan",
    "SpmdReport",
    "SymAddr",
    "render_race_table",
    "run_spmd",
    "Cluster",
    "ClusterConfig",
    "Direction",
    "RoutingPolicy",
    "CostModel",
    "HostConfig",
    "DmaConfig",
    "NtbPortConfig",
    "LinkConfig",
    "__version__",
]
