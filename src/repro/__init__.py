"""repro — OpenSHMEM over a switchless PCIe NTB ring, reproduced in simulation.

A faithful, laptop-scale reproduction of Lim, Park & Cha, *"Developing an
OpenSHMEM Model over a Switchless PCIe Non-Transparent Bridge Interface"*
(IPDPSW 2019).  The real prototype needs PLX PEX87xx NTB adapters; this
package substitutes a register-accurate NTB/PCIe/host model running on a
deterministic discrete-event simulator (virtual microseconds), with the
OpenSHMEM runtime implemented exactly as the paper describes.

Quick start::

    import numpy as np
    from repro import run_spmd

    def main(pe):
        sym = yield from pe.malloc_array(16, np.int64)
        right = (pe.my_pe() + 1) % pe.num_pes()
        yield from pe.put_array(sym, np.full(16, pe.my_pe()), right)
        yield from pe.barrier_all()
        return pe.read_symmetric_array(sym, 16, np.int64).tolist()

    report = run_spmd(main, n_pes=3)
    print(report.results, f"{report.elapsed_us:.0f} virtual us")

Layers (bottom-up): :mod:`repro.sim` (event kernel), :mod:`repro.memory`,
:mod:`repro.pcie`, :mod:`repro.ntb`, :mod:`repro.host`, :mod:`repro.fabric`
(the substrates), :mod:`repro.core` (the paper's contribution) and
:mod:`repro.bench` (the Fig. 8/9/10 harnesses).
"""

def _warm_bytecode_cache() -> None:
    """Ahead-of-time compile the package when implicit caching is off.

    Some execution environments set ``PYTHONDONTWRITEBYTECODE=1``, which
    makes every fresh interpreter re-parse all ~130 modules of this
    package (~90 ms, dominating short CLI runs like the smoke bench).
    ``compileall`` writes the cache *explicitly* — it is exempt from the
    flag by design — and an up-to-date tree rescans in ~8 ms, so running
    it unconditionally here is cheap, incremental and edit-safe.
    """
    import sys

    if not sys.dont_write_bytecode:
        return  # normal interpreter: caching already implicit
    from pathlib import Path

    package_dir = Path(__file__).resolve().parent
    if not (package_dir / "__init__.py").is_file():  # pragma: no cover
        return  # zipimport or frozen: nothing to precompile
    try:
        import compileall

        compileall.compile_dir(str(package_dir), quiet=2)
    except Exception:  # pragma: no cover - read-only checkout etc.
        pass


_warm_bytecode_cache()

from .core import (
    PE,
    AmoOp,
    HeapConfig,
    LocalBuffer,
    Mode,
    RaceError,
    ShmemConfig,
    ShmemError,
    SpmdReport,
    SymAddr,
    run_spmd,
)
from .fabric import Cluster, ClusterConfig, Direction, RoutingPolicy
from .host import CostModel, HostConfig
from .ntb import DmaConfig, NtbPortConfig
from .pcie import LinkConfig

#: Deferred (PEP 562), mirroring repro.core: sanitizer machinery and the
#: fastpath config load on first use only.
_LAZY_CORE_NAMES = frozenset({
    "FastpathConfig", "RaceReport", "ShmemSan", "render_race_table",
})


def __getattr__(name: str):
    if name in _LAZY_CORE_NAMES:
        from . import core

        value = getattr(core, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "PE",
    "AmoOp",
    "HeapConfig",
    "LocalBuffer",
    "Mode",
    "RaceError",
    "RaceReport",
    "FastpathConfig",
    "ShmemConfig",
    "ShmemError",
    "ShmemSan",
    "SpmdReport",
    "SymAddr",
    "render_race_table",
    "run_spmd",
    "Cluster",
    "ClusterConfig",
    "Direction",
    "RoutingPolicy",
    "CostModel",
    "HostConfig",
    "DmaConfig",
    "NtbPortConfig",
    "LinkConfig",
    "__version__",
]
