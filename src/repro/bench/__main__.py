"""CLI entry point: ``python -m repro.bench`` regenerates the evaluation.

Options::

    python -m repro.bench                 # quick 4-point sweep
    python -m repro.bench --full          # the paper's 10-size grid
    python -m repro.bench --ablations     # also run the ablation suite
    python -m repro.bench --json out.json # dump rows as JSON
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .harness import run_all
from .reporting import render_table


def _run_ablations() -> None:
    from .experiments import (
        run_barrier_ablation,
        run_chunk_ablation,
        run_dma_page_ablation,
        run_get_chunk_ablation,
        run_irq_ablation,
        run_routing_ablation,
        run_scaling_ablation,
    )

    suites = [
        ("routing policy (x = hop distance)", run_routing_ablation),
        ("bypass chunking (x = chunk bytes)", run_chunk_ablation),
        ("get chunk (x = chunk bytes)", run_get_chunk_ablation),
        ("DMA descriptor cost", run_dma_page_ablation),
        ("barrier strategy (x = ring size)", run_barrier_ablation),
        ("ring scaling (x = ring size)", run_scaling_ablation),
        ("interrupt path", run_irq_ablation),
    ]
    for title, runner in suites:
        rows = runner()
        print()
        print(render_table(rows, f"ablation: {title}"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation (Figs. 8-10, "
                    "Table I) on the simulated NTB ring.",
    )
    parser.add_argument("--full", action="store_true",
                        help="sweep the paper's full 1KB-512KB grid")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the DESIGN.md §6 ablation suite")
    parser.add_argument("--json", metavar="PATH",
                        help="write all measured rows to a JSON file")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    report = run_all(quick=not args.full)
    print(report.render())

    if args.ablations:
        _run_ablations()

    if args.json:
        payload = [
            {
                "experiment": row.experiment,
                "series": row.series,
                "size": row.size,
                "value": row.value,
                "unit": row.unit,
                **row.extra,
            }
            for row in report.rows
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {len(payload)} rows to {args.json}")

    print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
          "all values are virtual-time measurements")
    if not report.all_shapes_pass:
        print("SOME SHAPE CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
