"""CLI entry point: ``python -m repro.bench`` regenerates the evaluation.

Options::

    python -m repro.bench                 # quick 4-point sweep
    python -m repro.bench --full          # the paper's 10-size grid
    python -m repro.bench --ablations     # also run the ablation suite
    python -m repro.bench --json out.json # dump rows as JSON
    python -m repro.bench --trace t.json  # span-trace fig9, export Perfetto
    python -m repro.bench --smoke         # fig9-only small sizes (CI)
    python -m repro.bench --chaos         # sever-a-cable fault demo
    python -m repro.bench --chaos --chaos-seed 7   # different cut point
    python -m repro.bench --metrics       # metered smoke + SLO evaluation
    python -m repro.bench --metrics --check BENCH_PR7.json  # CI gate
    python -m repro.bench --kernel        # DES kernel throughput bench
    python -m repro.bench --kernel --check BENCH_PR8.json   # CI gate
    python -m repro.bench --topology      # ring/mesh/torus scaling sweep
    python -m repro.bench --topology --topology-full        # + 64 hosts
    python -m repro.bench --topology --check BENCH_PR9.json # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .reporting import render_percentiles, render_table


def _run_ablations() -> None:
    from .experiments import (
        run_barrier_ablation,
        run_chunk_ablation,
        run_dma_page_ablation,
        run_get_chunk_ablation,
        run_irq_ablation,
        run_routing_ablation,
        run_scaling_ablation,
    )

    suites = [
        ("routing policy (x = hop distance)", run_routing_ablation),
        ("bypass chunking (x = chunk bytes)", run_chunk_ablation),
        ("get chunk (x = chunk bytes)", run_get_chunk_ablation),
        ("DMA descriptor cost", run_dma_page_ablation),
        ("barrier strategy (x = ring size)", run_barrier_ablation),
        ("ring scaling (x = ring size)", run_scaling_ablation),
        ("interrupt path", run_irq_ablation),
    ]
    for title, runner in suites:
        rows = runner()
        print()
        print(render_table(rows, f"ablation: {title}"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation (Figs. 8-10, "
                    "Table I) on the simulated NTB ring.",
    )
    parser.add_argument("--full", action="store_true",
                        help="sweep the paper's full 1KB-512KB grid")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the DESIGN.md §6 ablation suite")
    parser.add_argument("--json", metavar="PATH",
                        help="write all measured rows to a JSON file")
    parser.add_argument("--trace", metavar="PATH",
                        help="enable span tracing on the fig9 sweep and "
                             "write a Chrome trace-event (Perfetto) JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="fig9-only 1KB/8KB smoke run (fast; skips "
                             "shape checks — sizes are off-grid)")
    parser.add_argument("--chaos", action="store_true",
                        help="4-host fault demo: sever one ring cable at "
                             "a seeded virtual time; the workload must "
                             "re-route and finish with correct data")
    parser.add_argument("--chaos-seed", type=int, default=42,
                        metavar="N",
                        help="seed for the chaos fault plan (default 42)")
    parser.add_argument("--compare-fastpath", action="store_true",
                        help="baseline-vs-fastpath grid (Put/Get latency "
                             "and throughput at 4KB/64KB/512KB x 1/2 hops, "
                             "inline 32B, barrier); writes BENCH_PR5.json "
                             "unless --check is given")
    parser.add_argument("--metrics", action="store_true",
                        help="metered smoke run: mixed workload with the "
                             "metrics ticker + DES profiler, evaluated "
                             "against the bundled SLO ruleset; writes "
                             "BENCH_PR7.json unless --check is given")
    parser.add_argument("--kernel", action="store_true",
                        help="DES kernel throughput bench: timer-storm "
                             "dispatch rate per scheduler (heap/calendar/"
                             "legacy step driver), 16-host chaos+traced "
                             "stress and the PR-7 profile rerun; writes "
                             "BENCH_PR8.json unless --check is given")
    parser.add_argument("--topology", action="store_true",
                        help="ring/mesh/torus scaling sweep: antipodal "
                             "put/get/barrier latency + bisection "
                             "throughput at N=4/16 plus a fault-injected "
                             "mesh reroute scenario; writes BENCH_PR9.json "
                             "unless --check is given")
    parser.add_argument("--topology-full", action="store_true",
                        help="with --topology: include the slow 64-host "
                             "tier (ring64/mesh8x8/torus4x4x4)")
    parser.add_argument("--snapshot", metavar="PATH",
                        help="with --metrics: also write the registry "
                             "snapshot JSON (repro-metrics/v1) for "
                             "'python -m repro.obsv metrics'")
    parser.add_argument("--out", metavar="PATH",
                        help="output path for --compare-fastpath "
                             "(default: BENCH_PR5.json), --metrics "
                             "(default: BENCH_PR7.json) or --kernel "
                             "(default: BENCH_PR8.json)")
    parser.add_argument("--check", metavar="PATH",
                        help="with --compare-fastpath or --metrics: gate "
                             "against a checked-in reference instead of "
                             "writing; fails on any virtual-time metric "
                             "regressing beyond the recorded tolerance")
    args = parser.parse_args(argv)

    if args.topology:
        from .experiments.topology import check_against as topology_check, \
            run_topology_bench

        t0 = time.perf_counter()
        result = run_topology_bench(include_slow=args.topology_full)
        print(result.render())
        print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
              "latencies/throughputs are virtual-time measurements")
        if args.check:
            check = topology_check(result, args.check)
            print(check.render())
            return 0 if check.ok and result.targets_pass else 1
        out = args.out or "BENCH_PR9.json"
        result.write(out)
        print(f"wrote {out}")
        return 0 if result.targets_pass else 1

    if args.kernel:
        from .experiments.kernel import check_against as kernel_check, \
            run_kernel_bench

        t0 = time.perf_counter()
        result = run_kernel_bench()
        print(result.render())
        print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
              "events/sec are host wall-clock figures")
        if args.check:
            check = kernel_check(result, args.check)
            print(check.render())
            return 0 if check.ok else 1
        out = args.out or "BENCH_PR8.json"
        result.write(out)
        print(f"wrote {out}")
        return 0 if result.targets_pass else 1

    if args.metrics:
        from .experiments.metrics import check_against as metrics_check, \
            run_metrics_smoke

        t0 = time.perf_counter()
        result = run_metrics_smoke()
        print(result.render())
        print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
              "latencies/counters are virtual-time measurements")
        if args.snapshot:
            result.write_snapshot(args.snapshot)
            print(f"wrote metrics snapshot to {args.snapshot} "
                  f"(inspect with 'python -m repro.obsv metrics "
                  f"{args.snapshot}')")
        if args.check:
            check = metrics_check(result, args.check)
            print(check.render())
            return 0 if check.ok and result.ok else 1
        out = args.out or "BENCH_PR7.json"
        result.write(out)
        print(f"wrote {out}")
        return 0 if result.ok else 1

    if args.compare_fastpath:
        from .experiments.fastpath import check_against, \
            run_fastpath_compare

        t0 = time.perf_counter()
        result = run_fastpath_compare()
        print(result.render())
        print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
              "latencies/throughputs are virtual-time measurements")
        if args.check:
            check = check_against(result, args.check)
            print(check.render())
            return 0 if check.ok and result.targets_pass else 1
        out = args.out or "BENCH_PR5.json"
        result.write(out)
        print(f"wrote {out}")
        return 0 if result.targets_pass else 1

    if args.chaos:
        from .experiments.chaos import run_chaos_demo

        t0 = time.perf_counter()
        result = run_chaos_demo(seed=args.chaos_seed)
        print(result.summary())
        print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
              "all values are virtual-time measurements")
        return 0 if result.ok else 1

    t0 = time.perf_counter()
    scope = None
    if args.smoke:
        from .experiments.fig9 import run_fig9

        fig9 = run_fig9(sizes=[1 << 10, 1 << 13],
                        trace=args.trace is not None)
        rows = fig9.rows
        scope = fig9.scope
        print(render_table(
            [r for r in rows if r.experiment == "fig9a"],
            "Fig 9(a) Put latency, smoke sizes [us]"))
        print()
        print(render_table(
            [r for r in rows if r.experiment == "fig9b"],
            "Fig 9(b) Get latency, smoke sizes [us]"))
        if args.trace:
            print()
            print(render_percentiles(
                rows, "fig9 latency percentiles (traced)"))
        report = None
    else:
        from .harness import run_all

        report = run_all(quick=not args.full,
                         trace=args.trace is not None)
        rows = report.rows
        scope = report.scope
        print(report.render())

    if args.ablations:
        _run_ablations()

    if args.trace:
        if scope is None:
            print("--trace: no scope produced (nothing to export)",
                  file=sys.stderr)
            return 1
        from ..obsv import dump_chrome_trace

        dump_chrome_trace(scope, args.trace)
        print(f"\nwrote {len(scope.spans)} spans to {args.trace} "
              f"(open in https://ui.perfetto.dev or inspect with "
              f"'python -m repro.obsv {args.trace}')")

    if args.json:
        payload = [
            {
                "experiment": row.experiment,
                "series": row.series,
                "size": row.size,
                "value": row.value,
                "unit": row.unit,
                **row.extra,
            }
            for row in rows
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {len(payload)} rows to {args.json}")

    print(f"\nwall time: {time.perf_counter() - t0:.1f}s; "
          "all values are virtual-time measurements")
    if report is not None and not report.all_shapes_pass:
        print("SOME SHAPE CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
