"""Reporting utilities: result rows, table rendering, paper comparison.

Every experiment produces a list of :class:`Row` records in *virtual*
time/throughput units.  ``render_table`` prints the same rows the paper's
figures plot; ``shape_check`` evaluates the qualitative acceptance
criteria from DESIGN.md §4 so benches can assert the reproduction holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..core.sanitizer import render_race_table

__all__ = ["Row", "render_table", "render_percentiles", "size_label",
           "ShapeCheck", "geometric_mean", "render_race_table"]

#: The request sizes the paper sweeps in every figure (1 KB .. 512 KB).
PAPER_SIZES = [1 << k for k in range(10, 20)]


# Canonical implementation lives in the metrics fabric so size-keyed
# metric names (put_us.4KB.1hop) agree everywhere; re-exported here for
# the existing bench callers.
from ..obsv.metrics import size_label  # noqa: E402,F401


@dataclass
class Row:
    """One measured point of an experiment."""

    experiment: str            # e.g. "fig9a"
    series: str                # e.g. "DMA 1 hop"
    size: int                  # request size in bytes
    value: float               # measured value
    unit: str                  # "us" | "MB/s"
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def size_label(self) -> str:
        return size_label(self.size)


def render_table(rows: Sequence[Row], title: str = "",
                 value_format: str = "{:>12.1f}") -> str:
    """Render rows as a figure-shaped table: one column per series,
    one line per request size."""
    if not rows:
        return f"{title}\n(no data)"
    series_names: list[str] = []
    for row in rows:
        if row.series not in series_names:
            series_names.append(row.series)
    sizes = sorted({row.size for row in rows})
    unit = rows[0].unit
    cells: dict[tuple[int, str], float] = {
        (row.size, row.series): row.value for row in rows
    }
    width = max(12, max(len(s) for s in series_names) + 2)
    lines = []
    if title:
        lines.append(title)
    header = f"{'size':>8} " + "".join(
        f"{name:>{width}}" for name in series_names
    ) + f"   [{unit}]"
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        cols = ""
        for name in series_names:
            value = cells.get((size, name))
            cols += (value_format.format(value).rjust(width)
                     if value is not None else " " * (width - 3) + "  -")
        lines.append(f"{size_label(size):>8} {cols}")
    return "\n".join(lines)


def render_percentiles(rows: Sequence[Row], title: str = "") -> str:
    """Latency percentile table for rows carrying ``p50_us``/``p99_us``
    in ``extra`` (traced bench runs); empty-safe."""
    rows = [r for r in rows if "p50_us" in r.extra]
    lines = [title] if title else []
    if not rows:
        lines.append("(no percentile data; run with tracing enabled)")
        return "\n".join(lines)
    header = (f"{'experiment':<12} {'series':<16} {'size':>8} "
              f"{'p50_us':>10} {'p99_us':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.experiment:<12} {row.series:<16} {row.size_label:>8} "
            f"{row.extra['p50_us']:>10.1f} {row.extra['p99_us']:>10.1f}"
        )
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass
class ShapeCheck:
    """A qualitative acceptance criterion against the paper's figure.

    ``predicate`` receives ``{series: {size: value}}`` and returns bool.
    """

    description: str
    predicate: Callable[[dict[str, dict[int, float]]], bool]

    def evaluate(self, rows: Sequence[Row]) -> bool:
        table: dict[str, dict[int, float]] = {}
        for row in rows:
            table.setdefault(row.series, {})[row.size] = row.value
        return self.predicate(table)


def check_shapes(rows: Sequence[Row],
                 checks: Sequence[ShapeCheck]) -> list[tuple[str, bool]]:
    """Evaluate all checks; returns (description, passed) pairs."""
    return [(check.description, check.evaluate(rows)) for check in checks]


def format_shape_report(results: Sequence[tuple[str, bool]]) -> str:
    lines = ["shape checks vs paper:"]
    for description, passed in results:
        marker = "PASS" if passed else "FAIL"
        lines.append(f"  [{marker}] {description}")
    return "\n".join(lines)
