"""Experiment harness: run every figure/table, check shapes, report.

``run_all()`` regenerates the paper's complete evaluation section and
returns the rows plus the qualitative shape-check results recorded in
EXPERIMENTS.md.  The shape checks encode DESIGN.md §4's acceptance
criteria — who wins, by roughly what factor, where the hop sensitivity
shows — rather than absolute numbers (the substrate is a simulator, not
the authors' testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .experiments.fig8 import run_fig8
from .experiments.fig9 import run_fig9
from .experiments.fig10 import run_fig10
from .experiments.table1 import run_table1
from .reporting import (
    PAPER_SIZES,
    Row,
    ShapeCheck,
    check_shapes,
    render_percentiles,
    render_table,
)

__all__ = [
    "fig8_shape_checks",
    "fig9_shape_checks",
    "fig10_shape_checks",
    "ExperimentReport",
    "run_all",
]

_LARGE = 512 * 1024
_SMALL = 1024


def _at(table, series, size):
    return table[series][size]


def fig8_shape_checks() -> list[ShapeCheck]:
    return [
        ShapeCheck(
            "per-link rate saturates in the 20-30 Gbps band "
            "(2000-3800 MB/s) at 512KB",
            lambda t: 2000 <= _at(t, "Independent", _LARGE) <= 3800,
        ),
        ShapeCheck(
            "throughput rises monotonically with request size",
            lambda t: all(
                _at(t, "Independent", a) <= _at(t, "Independent", b) * 1.02
                for a, b in zip(sorted(t["Independent"]),
                                sorted(t["Independent"])[1:])
            ),
        ),
        ShapeCheck(
            "ring-simultaneous is slightly below independent at 512KB "
            "(dip between 2% and 40%)",
            lambda t: 0.60 <= (_at(t, "Ring", _LARGE)
                               / _at(t, "Independent", _LARGE)) <= 0.98,
        ),
    ]


def fig8d_shape_checks() -> list[ShapeCheck]:
    return [
        ShapeCheck(
            "total network throughput exceeds any single link's rate",
            lambda t: _at(t, "Ring", _LARGE) > 1.5 * 2900,
        ),
    ]


def fig9_shape_checks() -> dict[str, list[ShapeCheck]]:
    return {
        "fig9a": [
            ShapeCheck(
                "put: DMA beats memcpy at 512KB by >2x",
                lambda t: _at(t, "memcpy 1 hop", _LARGE)
                > 2 * _at(t, "DMA 1 hop", _LARGE),
            ),
            ShapeCheck(
                "put is nearly hop-insensitive (2 hops < 1.6x of 1 hop)",
                lambda t: _at(t, "DMA 2 hops", _LARGE)
                < 1.6 * _at(t, "DMA 1 hop", _LARGE),
            ),
            ShapeCheck(
                "put memcpy 512KB lands in the paper's ~5000us band",
                lambda t: 2500 <= _at(t, "memcpy 1 hop", _LARGE) <= 10000,
            ),
        ],
        "fig9b": [
            ShapeCheck(
                "get is strongly hop-sensitive (2 hops > 1.6x of 1 hop)",
                lambda t: _at(t, "DMA 2 hops", _LARGE)
                > 1.6 * _at(t, "DMA 1 hop", _LARGE),
            ),
            ShapeCheck(
                "get memcpy collapses vs DMA (>2.5x slower at 512KB)",
                lambda t: _at(t, "memcpy 1 hop", _LARGE)
                > 2.5 * _at(t, "DMA 1 hop", _LARGE),
            ),
            ShapeCheck(
                "get memcpy 2 hops reaches the paper's tens-of-ms band",
                lambda t: 20_000 <= _at(t, "memcpy 2 hops", _LARGE)
                <= 120_000,
            ),
        ],
        "fig9c": [
            ShapeCheck(
                "put DMA throughput ceiling in the paper's ~350 MB/s band",
                lambda t: 250 <= _at(t, "DMA 1 hop", _LARGE) <= 500,
            ),
            ShapeCheck(
                "put memcpy ceiling near the ~105 MB/s PIO-write rate",
                lambda t: 70 <= _at(t, "memcpy 1 hop", _LARGE) <= 140,
            ),
        ],
        "fig9d": [
            ShapeCheck(
                "get DMA 1 hop tops out near the paper's ~50 MB/s",
                lambda t: 30 <= _at(t, "DMA 1 hop", _LARGE) <= 80,
            ),
            ShapeCheck(
                "get throughput an order below put throughput",
                lambda t: _at(t, "DMA 1 hop", _LARGE) < 100,
            ),
        ],
    }


def fig10_shape_checks() -> list[ShapeCheck]:
    return [
        ShapeCheck(
            "barrier latency is substantial at small sizes "
            "(>150us at 1KB, vs ~tens of us for the put itself)",
            lambda t: _at(t, "DMA 1 hop", _SMALL) > 150,
        ),
        ShapeCheck(
            "barrier latency sustained as size grows "
            "(512KB within 12x of 1KB for DMA 1 hop)",
            lambda t: _at(t, "DMA 1 hop", _LARGE)
            < 12 * _at(t, "DMA 1 hop", _SMALL),
        ),
        ShapeCheck(
            "multi-hop memcpy barriers absorb residual forwarding "
            "(memcpy 2 hops >= DMA 1 hop at 512KB)",
            lambda t: _at(t, "memcpy 2 hops", _LARGE)
            >= _at(t, "DMA 1 hop", _LARGE),
        ),
    ]


@dataclass
class ExperimentReport:
    """Everything `run_all` produced."""

    rows: list[Row] = field(default_factory=list)
    shape_results: list[tuple[str, str, bool]] = field(default_factory=list)
    #: fig9's span scope when the harness ran with tracing (for export).
    scope: Optional[Any] = None

    def rows_for(self, experiment: str) -> list[Row]:
        return [row for row in self.rows if row.experiment == experiment]

    @property
    def all_shapes_pass(self) -> bool:
        return all(passed for _exp, _desc, passed in self.shape_results)

    def render(self) -> str:
        sections = []
        titles = {
            "fig8a": "Fig 8(a) raw NTB rate, host0<->host1 [MB/s]",
            "fig8b": "Fig 8(b) raw NTB rate, host1<->host2 [MB/s]",
            "fig8c": "Fig 8(c) raw NTB rate, host2<->host0 [MB/s]",
            "fig8d": "Fig 8(d) total network rate [MB/s]",
            "fig9a": "Fig 9(a) Put latency [us]",
            "fig9b": "Fig 9(b) Get latency [us]",
            "fig9c": "Fig 9(c) Put throughput [MB/s]",
            "fig9d": "Fig 9(d) Get throughput [MB/s]",
            "fig10": "Fig 10 barrier latency after Put [us]",
            "table1": "Table I per-API cost [us]",
        }
        for experiment, title in titles.items():
            rows = self.rows_for(experiment)
            if rows:
                sections.append(render_table(rows, title))
        traced = [r for r in self.rows
                  if r.experiment in ("fig9a", "fig9b")
                  and "p50_us" in r.extra]
        if traced:
            sections.append(render_percentiles(
                traced, "Fig 9 latency percentiles (traced run)"))
        shape_lines = ["", "shape checks vs paper:"]
        for experiment, description, passed in self.shape_results:
            marker = "PASS" if passed else "FAIL"
            shape_lines.append(f"  [{marker}] {experiment}: {description}")
        sections.append("\n".join(shape_lines))
        return "\n\n".join(sections)


def run_all(sizes: Optional[list[int]] = None,
            quick: bool = False, trace: bool = False) -> ExperimentReport:
    """Regenerate every table and figure.

    ``quick=True`` sweeps a 4-point size grid instead of the paper's 10.
    ``trace=True`` runs fig9 with span tracing: its latency rows carry
    p50/p99 in ``Row.extra`` and ``report.scope`` holds the spans.
    """
    if sizes is None:
        sizes = ([1 << 10, 1 << 13, 1 << 16, 1 << 19] if quick
                 else PAPER_SIZES)
    report = ExperimentReport()

    fig8 = run_fig8(sizes=sizes)
    report.rows.extend(fig8.rows)
    for sub in ("fig8a", "fig8b", "fig8c"):
        for description, passed in check_shapes(
                [r for r in fig8.rows if r.experiment == sub],
                fig8_shape_checks()):
            report.shape_results.append((sub, description, passed))
    for description, passed in check_shapes(
            [r for r in fig8.rows if r.experiment == "fig8d"],
            fig8d_shape_checks()):
        report.shape_results.append(("fig8d", description, passed))

    fig9 = run_fig9(sizes=sizes, trace=trace)
    report.rows.extend(fig9.rows)
    report.scope = fig9.scope
    for experiment, checks in fig9_shape_checks().items():
        for description, passed in check_shapes(
                [r for r in fig9.rows if r.experiment == experiment],
                checks):
            report.shape_results.append((experiment, description, passed))

    fig10 = run_fig10(sizes=sizes)
    report.rows.extend(fig10.rows)
    for description, passed in check_shapes(fig10.rows,
                                            fig10_shape_checks()):
        report.shape_results.append(("fig10", description, passed))

    table1 = run_table1()
    report.rows.extend(table1.rows)

    return report
