"""Figure 9: OpenSHMEM Put/Get latency and throughput.

Four configurations per the paper — {RDMA(DMA), memcpy} x {1 hop, 2 hops}
— swept over request sizes 1 KB..512 KB on the 3-host ring.  Latency is
virtual time around the blocking call on PE 0 (Put: until the local buffer
is reusable; Get: until the data is in hand); throughput is size/latency,
matching how the paper derives (c)/(d) from (a)/(b).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

from ...core import Mode, ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ..reporting import PAPER_SIZES, Row

__all__ = ["Fig9Result", "run_fig9", "CONFIGS"]

#: The paper's four series, in its legend order.
CONFIGS = [
    ("DMA 1 hop", Mode.DMA, 1),
    ("DMA 2 hops", Mode.DMA, 2),
    ("memcpy 1 hop", Mode.MEMCPY, 1),
    ("memcpy 2 hops", Mode.MEMCPY, 2),
]


@dataclass
class Fig9Result:
    rows: list[Row]
    #: the span scope when the sweep ran with tracing (None otherwise).
    scope: Optional[Any] = None

    def series(self, experiment: str, name: str) -> dict[int, float]:
        return {
            r.size: r.value
            for r in self.rows
            if r.series == name and r.experiment == experiment
        }


def run_fig9(sizes: Optional[list[int]] = None,
             shmem_config: Optional[ShmemConfig] = None,
             n_pes: int = 3, trace: bool = False) -> Fig9Result:
    """Regenerate Fig. 9(a)–(d); rows land in experiments ``fig9a``
    (put latency), ``fig9b`` (get latency), ``fig9c``/``fig9d``
    (derived throughputs).

    ``trace=True`` turns on span tracing for the sweep: latency rows
    carry ``p50_us``/``p99_us`` from the per-op×size×hop histograms in
    ``Row.extra`` and the scope lands in ``Fig9Result.scope`` (export it
    with :func:`repro.obsv.dump_chrome_trace`).  Tracing never consumes
    virtual time, so the measured values are identical either way.
    """
    sizes = sizes or PAPER_SIZES
    if trace:
        shmem_config = dataclasses.replace(
            shmem_config or ShmemConfig(), trace_spans=True
        )
    max_size = max(sizes)
    measurements: dict[tuple[str, str, int], float] = {}

    def main(pe):
        sym = yield from pe.malloc(max_size)
        src = pe.local_alloc(max_size)
        yield from pe.barrier_all()
        for series, mode, hops in CONFIGS:
            target = (pe.my_pe() + hops) % pe.num_pes()
            for size in sizes:
                if pe.my_pe() == 0:
                    start = pe.rt.env.now
                    yield from pe.put_from(sym, src, size, target,
                                           mode=mode)
                    measurements[("put", series, size)] = \
                        pe.rt.env.now - start
                yield from pe.barrier_all()
            for size in sizes:
                if pe.my_pe() == 0:
                    start = pe.rt.env.now
                    yield from pe.get(sym, size, target, mode=mode)
                    measurements[("get", series, size)] = \
                        pe.rt.env.now - start
                yield from pe.barrier_all()
        return True

    report = run_spmd(main, n_pes=n_pes,
                      cluster_config=ClusterConfig(n_hosts=n_pes),
                      shmem_config=shmem_config)
    scope = report.scope

    series_key = {series: (mode, hops) for series, mode, hops in CONFIGS}
    rows: list[Row] = []
    for (op, series, size), latency in measurements.items():
        lat_exp = "fig9a" if op == "put" else "fig9b"
        thr_exp = "fig9c" if op == "put" else "fig9d"
        extra: dict[str, Any] = {}
        if scope is not None:
            mode, hops = series_key[series]
            hist = scope.hist.get(f"{op}.{mode.name}.{size}B.{hops}hop")
            if hist is not None:
                summary = hist.summary()
                extra = {"p50_us": summary.p50, "p99_us": summary.p99}
        rows.append(Row(lat_exp, series, size, latency, "us", dict(extra)))
        rows.append(Row(thr_exp, series, size, size / latency, "MB/s",
                        dict(extra)))
    return Fig9Result(rows, scope=scope)
