"""Chaos demo: sever a ring cable mid-run and watch the fabric survive.

``python -m repro.bench --chaos [--chaos-seed N]`` runs a 4-host ring
through a put/barrier/verify workload while a :class:`repro.faults`
plan severs one cable at a seeded virtual time.  The expected story:

1. the send path hits the dead cable (master abort) and retries with
   backoff while the heartbeat monitors count silent periods;
2. within ``miss_threshold`` periods both endpoints declare the edge
   DEAD and flood LINK_DOWN the long way around the ring;
3. traffic re-routes in the opposite direction, barriers fall back to
   the degraded line sweep over the surviving path, and the workload
   completes with correct data.

Rounds that were cut mid-flight surface as typed
``PeerUnreachableError`` on the affected PEs (never a hang); the final
round runs strictly after recovery and must verify on every PE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import PE, PeerUnreachableError, ShmemConfig, run_spmd
from ...faults import FaultPlan
from ..reporting import Row

__all__ = ["ChaosResult", "run_chaos_demo"]

#: virtual µs between workload rounds (long enough that the sweep spans
#: the whole sever window of FaultPlan.seeded_severs).
_ROUND_GAP_US = 2_500.0
_ROUNDS = 12
_SLOT = 256  # bytes each PE writes into its right neighbor


def _pattern(rnd: int, sender: int) -> np.ndarray:
    base = (rnd * 31 + sender * 7 + 1) & 0xFF
    return (np.arange(_SLOT, dtype=np.uint16) * 13 + base).astype(np.uint8)


@dataclass
class ChaosResult:
    rows: list[Row]
    seed: int
    plan: FaultPlan
    per_pe: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(stats["final_ok"] for stats in self.per_pe)

    def summary(self) -> str:
        lines = [f"chaos demo (seed={self.seed}): plan={self.plan}"]
        for pe_id, stats in enumerate(self.per_pe):
            lines.append(
                f"  pe{pe_id}: rounds_ok={stats['rounds_ok']} "
                f"degraded={stats['rounds_degraded']} "
                f"reroutes={stats['reroutes']} retries={stats['retries']} "
                f"dead_edges={stats['dead_edges']} "
                f"final_ok={stats['final_ok']}"
            )
        lines.append("  VERDICT: " + ("SURVIVED" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_chaos_demo(seed: int = 42, n_pes: int = 4) -> ChaosResult:
    """The ``--chaos`` workload; deterministic for a given seed."""
    plan = FaultPlan.seeded_severs(n_pes, seed, count=1)
    config = ShmemConfig(
        faults=plan,
        # Generous retry budget: the backoff sequence must outlast the
        # heartbeat detection window so mid-round severs re-route
        # instead of raising.
        max_retries=8,
        retry_backoff_us=200.0,
    )

    def body(pe: PE):
        me, n = pe.my_pe(), pe.num_pes()
        right = (me + 1) % n
        left = (me - 1) % n
        sym = yield from pe.malloc(n * _SLOT)
        stats = {"rounds_ok": 0, "rounds_degraded": 0, "rounds_dirty": 0,
                 "final_ok": False}
        last_seen_round = -1
        for rnd in range(_ROUNDS):
            # Every PE makes exactly one put attempt and one barrier
            # attempt per round, whatever fails: skipping a barrier call
            # would skew episode counts across PEs for good.
            put_ok = True
            try:
                yield from pe.put_array(
                    sym + me * _SLOT, _pattern(rnd, me), right)
            except PeerUnreachableError:
                put_ok = False
            barrier_ok = True
            try:
                yield from pe.barrier_all()
            except PeerUnreachableError:
                barrier_ok = False
            if put_ok and barrier_ok:
                got = yield from pe.get_array(
                    sym + left * _SLOT, _SLOT, np.uint8, me)
                if np.array_equal(got, _pattern(rnd, left)):
                    stats["rounds_ok"] += 1
                    last_seen_round = rnd
                else:
                    # My round survived but the left neighbor's put was
                    # cut: stale data, counted, not fatal mid-chaos.
                    stats["rounds_dirty"] += 1
            else:
                # The round was cut mid-flight: typed error, no hang.
                stats["rounds_degraded"] += 1
            yield pe.rt.env.timeout(_ROUND_GAP_US)
        # Strict final round: by now every PE routes around the dead
        # edge and barriers run the degraded line sweep.
        yield from pe.put_array(sym + me * _SLOT, _pattern(99, me), right)
        yield from pe.barrier_all()
        got = yield from pe.get_array(sym + left * _SLOT, _SLOT,
                                      np.uint8, me)
        stats["final_ok"] = bool(np.array_equal(got, _pattern(99, left)))
        stats["reroutes"] = pe.rt.reroutes
        stats["retries"] = pe.rt.retries
        stats["dead_edges"] = sorted(pe.rt.dead_edges)
        stats["last_clean_round"] = last_seen_round
        return stats

    # Heap offsets diverge across PEs when rounds degrade asymmetrically;
    # the demo verifies payload content itself.
    report = run_spmd(body, n_pes, shmem_config=config,
                      check_heap_consistency=False)
    per_pe = list(report.results)
    rows = [
        Row(experiment="chaos", series=f"pe{pe_id}", size=_SLOT,
            value=float(stats["rounds_ok"]), unit="rounds",
            extra={"degraded": stats["rounds_degraded"],
                   "reroutes": stats["reroutes"],
                   "final_ok": stats["final_ok"]})
        for pe_id, stats in enumerate(per_pe)
    ]
    return ChaosResult(rows=rows, seed=seed, plan=plan, per_pe=per_pe)
