"""Table I microbenchmarks: per-call overhead of every essential API.

The paper's Table I is an API inventory, not a measurement; the natural
bench analogue is the virtual-time cost of one invocation of each routine
on the 3-host ring (small arguments, quiesced system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core import Mode, ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ..reporting import Row

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    rows: list[Row]

    def cost(self, api: str) -> float:
        for row in self.rows:
            if row.series == api:
                return row.value
        raise KeyError(api)


def run_table1(shmem_config: Optional[ShmemConfig] = None,
               n_pes: int = 3) -> Table1Result:
    """Measure one-call costs; rows in experiment ``table1`` with the
    API name as the series and a nominal size of 8 bytes."""
    costs: dict[str, float] = {}

    def main(pe):
        env = pe.rt.env

        def clock():
            return env.now

        # my_pe / num_pes are pure lookups (0 µs by construction).
        start = clock()
        pe.my_pe()
        pe.num_pes()
        costs["my_pe/num_pes"] = clock() - start

        start = clock()
        sym = yield from pe.malloc(4096)
        costs["shmem_malloc"] = clock() - start

        yield from pe.barrier_all()

        if pe.my_pe() == 0:
            start = clock()
            yield from pe.p(sym, 1, 1)
            costs["shmem_put (8B, 1 hop)"] = clock() - start
            yield from pe.quiet()
            start = clock()
            yield from pe.g(sym, 1)
            costs["shmem_get (8B, 1 hop)"] = clock() - start
            start = clock()
            yield from pe.put(sym, b"\x00" * 1024, 1, mode=Mode.MEMCPY)
            costs["shmem_put (1KB, memcpy)"] = clock() - start
            yield from pe.quiet()
            start = clock()
            yield from pe.atomic_fetch_add(sym, 1, 1)
            costs["shmem_atomic_fetch_add"] = clock() - start
            start = clock()
            yield from pe.set_lock(sym + 2048)
            yield from pe.clear_lock(sym + 2048)
            costs["shmem_set/clear_lock"] = clock() - start
        yield from pe.barrier_all()

        start = clock()
        yield from pe.barrier_all()
        costs["shmem_barrier_all"] = clock() - start

        start = clock()
        yield from pe.free(sym)
        costs["shmem_free"] = clock() - start
        yield from pe.barrier_all()
        return True

    run_spmd(main, n_pes=n_pes,
             cluster_config=ClusterConfig(n_hosts=n_pes),
             shmem_config=shmem_config)

    return Table1Result([
        Row("table1", api, 8, value, "us")
        for api, value in costs.items()
    ])
