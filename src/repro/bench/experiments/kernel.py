"""DES-kernel throughput bench + gate (``python -m repro.bench --kernel``).

The PR-8 counterpart of the PR-7 metrics bench: where ``--metrics``
measures a full OpenSHMEM workload with the profiler hooked on the loop,
this experiment measures the **kernel itself** — the rebuilt dispatch hot
loop of :mod:`repro.sim.core` — and records BENCH_PR8.json:

* ``kernel_stress`` — a deep-queue timer storm (1024 concurrent periodic
  processes, the queue-depth regime of ROADMAP item 1's 64-host sweeps)
  dispatched by the inlined ``Environment.run`` loop, measured separately
  under the heap and calendar schedulers, plus a ``legacy_step`` driver
  that processes the same storm one :meth:`~repro.sim.Environment.step`
  call per event — the PR-7-era dispatch shape, kept as the in-tree
  reference point;
* ``stress_16host`` — the satellite stress scenario: a 16-host ring
  running a chaos (seeded cable sever) + span-traced put/barrier
  workload; its virtual-time figures are deterministic and gated with
  the usual tolerance, its events/sec with a floor fraction;
* ``metrics_smoke`` — the PR-7 profile re-run for continuity, so the
  events/sec trajectory across PRs stays comparable in one file.

Speedup accounting: ``speedup_vs_pr7_profile`` is the kernel_stress
events/sec under the default scheduler divided by the events/sec recorded
in BENCH_PR7.json (the metrics-smoke profile, measured on the same
machine at generation time).  The two profiles are named for what they
measure: the PR-7 figure taxes the loop with the profiler hook and full
workload stack; kernel_stress is the untaxed dispatch rate those stack
optimizations and the rebuild free up.

Wall-clock figures come from :class:`repro.obsv.Stopwatch` — the
determinism lint bans ``time`` here; virtual figures are deterministic
and byte-identical run to run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from ...core import PE, PeerUnreachableError, ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ...faults import FaultPlan
from ...obsv.profiler import Stopwatch
from ...sim import Environment
from ...sim.queues import QUEUE_KINDS
from .metrics import run_metrics_smoke

__all__ = ["KernelBenchResult", "run_kernel_bench", "run_kernel_stress",
           "run_stress_16host", "check_against", "SCHEMA"]

SCHEMA = "bench-pr8/v1"

#: virtual figures are deterministic; tolerance buys headroom against
#: intentional model recalibrations only (same policy as PR 5/7 gates).
TOLERANCE = 0.10

#: events/sec is machine-dependent: fail only below this fraction of the
#: recorded baseline (shared CI runners are easily 2-3x slower).
EVENTS_PER_SEC_FLOOR = 0.30

#: the ISSUE-8 acceptance target, asserted at generation time.
SPEEDUP_TARGET = 3.0

#: deep-queue storm shape: enough concurrent timers that the pending set
#: sits in the thousands, the regime 64-host serving runs produce.
STORM_TIMERS = 1024
STORM_HORIZON_US = 2_000.0

#: 16-host stress scenario shape.
STRESS_HOSTS = 16
_STRESS_ROUNDS = 6
_STRESS_GAP_US = 2_000.0
_STRESS_SLOT = 256


def _storm(env: Environment, period: float) -> Generator:
    while True:
        yield env.timeout(period)


def _build_storm(kind: str) -> Environment:
    env = Environment(queue=kind)
    for i in range(STORM_TIMERS):
        env.process(_storm(env, 1.0 + (i % 173) * 0.037),
                    name=f"storm.{i}")
    return env


def run_kernel_stress(repeats: int = 2) -> dict[str, Any]:
    """Timer-storm dispatch rate per scheduler + legacy step driver.

    Returns ``{mode: {events, wall_s, events_per_sec}}`` with the best of
    ``repeats`` runs per mode (best-of is the standard defence against
    one-off scheduler noise on shared runners).  Also cross-checks that
    every mode dispatches the identical event count — the cheap end of
    the differential guarantee the test harness proves in full.
    """
    out: dict[str, Any] = {}
    event_counts = set()
    for kind in QUEUE_KINDS:
        best = None
        for _ in range(repeats):
            env = _build_storm(kind)
            watch = Stopwatch().start()
            env.run(until=STORM_HORIZON_US)
            wall = watch.stop()
            if best is None or wall < best[1]:
                best = (env.dispatched_events, wall)
        events, wall = best
        event_counts.add(events)
        out[kind] = {
            "events": events,
            "wall_s": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "slab_recycled": env.slab_recycled,
        }
    # Legacy driver: one step() frame per event over the heap scheduler —
    # the dispatch shape every pre-PR8 run() used.
    best = None
    for _ in range(repeats):
        env = _build_storm("heap")
        watch = Stopwatch().start()
        while env._queue:
            if env.peek() > STORM_HORIZON_US:
                break
            env.step()
        wall = watch.stop()
        if best is None or wall < best[1]:
            best = (env.dispatched_events, wall)
    events, wall = best
    event_counts.add(events)
    out["legacy_step"] = {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    if len(event_counts) != 1:
        raise AssertionError(
            f"schedulers disagree on storm event count: {event_counts}")
    return out


def _stress_pattern(rnd: int, sender: int) -> np.ndarray:
    base = (rnd * 31 + sender * 7 + 1) & 0xFF
    return (np.arange(_STRESS_SLOT, dtype=np.uint16) * 13 + base) \
        .astype(np.uint8)


def _stress_body(pe: PE):
    me, n = pe.my_pe(), pe.num_pes()
    right = (me + 1) % n
    left = (me - 1) % n
    sym = yield from pe.malloc(n * _STRESS_SLOT)
    ok_rounds = 0
    degraded = 0
    for rnd in range(_STRESS_ROUNDS):
        put_ok = True
        try:
            yield from pe.put_array(
                sym + me * _STRESS_SLOT, _stress_pattern(rnd, me), right)
        except PeerUnreachableError:
            put_ok = False
        barrier_ok = True
        try:
            yield from pe.barrier_all()
        except PeerUnreachableError:
            barrier_ok = False
        if put_ok and barrier_ok:
            got = yield from pe.get_array(
                sym + left * _STRESS_SLOT, _STRESS_SLOT, np.uint8, me)
            if np.array_equal(got, _stress_pattern(rnd, left)):
                ok_rounds += 1
        else:
            degraded += 1
        yield pe.rt.env.timeout(_STRESS_GAP_US)
    # Strict final round after recovery: must verify on every PE.
    yield from pe.put_array(
        sym + me * _STRESS_SLOT, _stress_pattern(99, me), right)
    yield from pe.barrier_all()
    got = yield from pe.get_array(
        sym + left * _STRESS_SLOT, _STRESS_SLOT, np.uint8, me)
    final_ok = bool(np.array_equal(got, _stress_pattern(99, left)))
    return {"rounds_ok": ok_rounds, "degraded": degraded,
            "final_ok": final_ok}


def run_stress_16host(seed: int = 42) -> dict[str, Any]:
    """Chaos + traced 16-host ring stress (the ISSUE-8 satellite).

    One seeded cable sever mid-run with span tracing on, then full
    recovery; wall-clock events/sec measured with the untaxed stopwatch.
    """
    plan = FaultPlan.seeded_severs(STRESS_HOSTS, seed, count=1)
    config = ShmemConfig(
        faults=plan,
        trace_spans=True,
        max_retries=8,
        retry_backoff_us=200.0,
    )
    watch = Stopwatch().start()
    # Degraded rounds skew heap offsets asymmetrically (same reason the
    # chaos demo opts out); payload content is verified directly instead.
    report = run_spmd(
        _stress_body, n_pes=STRESS_HOSTS,
        cluster_config=ClusterConfig(n_hosts=STRESS_HOSTS),
        shmem_config=config,
        check_heap_consistency=False,
    )
    wall = watch.stop()
    env = report.cluster.env
    events = env.dispatched_events
    final_ok = all(r["final_ok"] for r in report.results)
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "final_ok": final_ok,
        # deterministic (virtual-time) figures, gated with tolerance:
        "virtual": {
            "elapsed_us": report.elapsed_us,
            "events_dispatched": float(events),
            "spans": float(len(report.scope.spans)),
            "rounds_ok": float(sum(r["rounds_ok"] for r in report.results)),
            "degraded": float(sum(r["degraded"] for r in report.results)),
        },
    }


@dataclass
class KernelBenchResult:
    """Everything BENCH_PR8.json records plus render/gate helpers."""

    stress: dict[str, Any]
    stress_16host: dict[str, Any]
    smoke_profile: dict[str, Any]
    default_queue: str
    pr7_baseline_eps: Optional[float]

    @property
    def speedup_vs_pr7(self) -> Optional[float]:
        if not self.pr7_baseline_eps:
            return None
        eps = self.stress[self.default_queue]["events_per_sec"]
        return eps / self.pr7_baseline_eps

    @property
    def targets_pass(self) -> bool:
        speedup = self.speedup_vs_pr7
        return (self.stress_16host["final_ok"]
                and (speedup is None or speedup >= SPEEDUP_TARGET))

    def virtual_figures(self) -> dict[str, float]:
        return dict(self.stress_16host["virtual"])

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema": SCHEMA,
            "tolerance": TOLERANCE,
            "events_per_sec_floor": EVENTS_PER_SEC_FLOOR,
            "default_queue": self.default_queue,
            "kernel_stress": self.stress,
            "stress_16host": {
                key: value for key, value in self.stress_16host.items()
                if key != "virtual"
            },
            "virtual": self.virtual_figures(),
            "metrics_smoke": {
                "events": self.smoke_profile["events"],
                "events_per_sec": self.smoke_profile["events_per_sec"],
                "wall_s": self.smoke_profile["wall_s"],
            },
        }
        if self.pr7_baseline_eps:
            payload["pr7_baseline_events_per_sec"] = self.pr7_baseline_eps
            payload["speedup_vs_pr7_profile"] = self.speedup_vs_pr7
        return payload

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = ["kernel stress (timer storm, "
                 f"{STORM_TIMERS} timers, {STORM_HORIZON_US:.0f} virtual us):"]
        for mode, figures in self.stress.items():
            marker = " (default)" if mode == self.default_queue else ""
            lines.append(
                f"  {mode:<12} {figures['events_per_sec']:>12,.0f} ev/s "
                f"({figures['events']} events in {figures['wall_s']:.3f} s)"
                f"{marker}"
            )
        s16 = self.stress_16host
        lines.append(
            f"16-host chaos+traced stress: {s16['events_per_sec']:,.0f} ev/s "
            f"({s16['events']} events, final_ok={s16['final_ok']})"
        )
        lines.append(
            f"metrics smoke (PR7 profile rerun): "
            f"{self.smoke_profile['events_per_sec']:,.0f} ev/s"
        )
        speedup = self.speedup_vs_pr7
        if speedup is not None:
            lines.append(
                f"speedup vs BENCH_PR7 profile ({self.pr7_baseline_eps:,.0f} "
                f"ev/s): {speedup:.1f}x (target >= {SPEEDUP_TARGET:.0f}x)"
            )
        return "\n".join(lines)


def run_kernel_bench(pr7_path: Optional[str] = "BENCH_PR7.json"
                     ) -> KernelBenchResult:
    """Run all three profiles and assemble the BENCH_PR8 payload."""
    from ...sim.core import get_default_queue

    pr7_eps: Optional[float] = None
    if pr7_path:
        try:
            with open(pr7_path) as fh:
                pr7_eps = float(
                    json.load(fh).get("profile", {}).get("events_per_sec"))
        except (OSError, TypeError, ValueError):
            pr7_eps = None
    stress = run_kernel_stress()
    stress_16 = run_stress_16host()
    smoke = run_metrics_smoke()
    return KernelBenchResult(
        stress=stress,
        stress_16host=stress_16,
        smoke_profile=smoke.profile,
        default_queue=get_default_queue(),
        pr7_baseline_eps=pr7_eps,
    )


@dataclass
class CheckResult:
    """Outcome of gating a fresh run against a checked-in BENCH_PR8.json."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  REGRESSION: {failure}")
        lines.append("kernel gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def check_against(result: KernelBenchResult, path: str,
                  tolerance: Optional[float] = None) -> CheckResult:
    """Gate a fresh run on the checked-in BENCH_PR8.json reference.

    Deterministic virtual figures may not drift beyond ``tolerance``;
    every recorded events/sec figure may not fall below the floor
    fraction of its reference (machine-dependent, like the PR-7 gate).
    """
    with open(path) as fh:
        reference = json.load(fh)
    if reference.get("schema") != SCHEMA:
        return CheckResult(ok=False, failures=[
            f"{path}: unknown schema {reference.get('schema')!r} "
            f"(expected {SCHEMA})"
        ])
    tol = tolerance if tolerance is not None \
        else float(reference.get("tolerance", TOLERANCE))
    floor = float(reference.get("events_per_sec_floor",
                                EVENTS_PER_SEC_FLOOR))
    failures: list[str] = []
    notes: list[str] = []

    current = result.virtual_figures()
    for key, ref_value in sorted(reference.get("virtual", {}).items()):
        value = current.get(key)
        if value is None:
            failures.append(f"{key}: figure disappeared from the run")
            continue
        if ref_value == 0:
            if value != 0:
                failures.append(f"{key}: 0 -> {value:g} (was zero)")
            continue
        drift = abs(value - ref_value) / abs(ref_value)
        if drift > tol:
            failures.append(
                f"{key}: {ref_value:g} -> {value:g} "
                f"({drift * 100:+.1f}% drift, tolerance {tol * 100:.0f}%)"
            )

    if not result.stress_16host["final_ok"]:
        failures.append("16-host stress: final verification round failed")

    def _gate_eps(label: str, ref_eps: float, eps: float) -> None:
        if ref_eps <= 0:
            return
        notes.append(
            f"{label}: {ref_eps:,.0f} -> {eps:,.0f} events/sec "
            f"(floor {floor:.0%})"
        )
        if eps < floor * ref_eps:
            failures.append(
                f"{label} events/sec collapsed: {eps:,.0f} < "
                f"{floor:.0%} of baseline {ref_eps:,.0f}"
            )

    for mode, ref_figures in sorted(
            reference.get("kernel_stress", {}).items()):
        figures = result.stress.get(mode)
        if figures is None:
            failures.append(f"kernel_stress[{mode}]: mode disappeared")
            continue
        _gate_eps(f"kernel_stress[{mode}]",
                  float(ref_figures.get("events_per_sec", 0.0)),
                  figures["events_per_sec"])
    _gate_eps(
        "stress_16host",
        float(reference.get("stress_16host", {})
              .get("events_per_sec", 0.0)),
        result.stress_16host["events_per_sec"])
    _gate_eps(
        "metrics_smoke",
        float(reference.get("metrics_smoke", {})
              .get("events_per_sec", 0.0)),
        result.smoke_profile["events_per_sec"])
    return CheckResult(ok=not failures, failures=failures, notes=notes)
