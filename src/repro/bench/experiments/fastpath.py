"""Baseline-vs-fastpath comparison grid (``--compare-fastpath``).

Runs the same Put/Get/barrier workload twice — paper-faithful config and
``ShmemConfig(fastpath=FastpathConfig())`` — and reports virtual-time
latency/throughput side by side at {4 KB, 64 KB, 512 KB} × {1, 2 hops},
plus the 32 B inline point, barrier latency, and the wall-clock cost of
each grid run (non-gating; machine-dependent).

The result serializes to ``BENCH_PR5.json``; :func:`check_against` gates
CI on it — any *fastpath virtual-time* metric regressing more than
``tolerance`` (default 10%) against the checked-in numbers fails the
build.  Baseline metrics are recorded for the ratios but not gated here
(the byte-identity regression test pins them exactly).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ...core import Mode, ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ..reporting import Row, size_label

__all__ = ["FastpathCompareResult", "run_fastpath_compare",
           "check_against", "SIZES", "HOPS", "INLINE_SIZE"]

SCHEMA = "bench-pr5/v1"
SIZES = [4 * 1024, 64 * 1024, 512 * 1024]
HOPS = [1, 2]
INLINE_SIZE = 32

#: Acceptance targets from the PR issue (fastpath relative to baseline).
TARGETS = {
    # metric key                      ratio key      bound   direction
    "put_throughput_512KB_1hop": ("put_MBps.512KB.1hop", 3.0, "min"),
    "get_latency_64KB_2hop": ("get_us.64KB.2hop", 0.6, "max"),
    "put_latency_32B_2hop": ("put_us.32B.2hop", 0.5, "max"),
}


@dataclass
class FastpathCompareResult:
    """Both grids' metrics + derived ratios, JSON-serializable."""

    baseline: dict[str, float]
    fastpath: dict[str, float]
    wall_clock_s: dict[str, float]
    tolerance: float = 0.10

    @property
    def ratios(self) -> dict[str, float]:
        """fastpath / baseline per shared metric."""
        out = {}
        for key, base in self.baseline.items():
            fast = self.fastpath.get(key)
            if fast is not None and base > 0:
                out[key] = fast / base
        return out

    def target_results(self) -> dict[str, dict[str, Any]]:
        ratios = self.ratios
        out = {}
        for name, (key, bound, direction) in TARGETS.items():
            ratio = ratios.get(key)
            ok = ratio is not None and (
                ratio >= bound if direction == "min" else ratio <= bound
            )
            out[name] = {"metric": key, "ratio": ratio, "bound": bound,
                         "direction": direction, "pass": ok}
        return out

    @property
    def targets_pass(self) -> bool:
        return all(t["pass"] for t in self.target_results().values())

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "tolerance": self.tolerance,
            "virtual": {
                "baseline": self.baseline,
                "fastpath": self.fastpath,
                "ratios": self.ratios,
            },
            "targets": self.target_results(),
            # Machine-dependent; recorded for the log, never gated.
            "wall_clock_s": self.wall_clock_s,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def rows(self) -> list[Row]:
        """Figure-shaped rows for ``render_table`` (latency, by op/hops)."""
        out = []
        for op in ("put", "get"):
            sizes = SIZES + ([INLINE_SIZE] if op == "put" else [])
            for hops in HOPS:
                for size in sorted(sizes):
                    key = f"{op}_us.{size_label(size)}.{hops}hop"
                    for series, grid in (("baseline", self.baseline),
                                         ("fastpath", self.fastpath)):
                        value = grid.get(key)
                        if value is not None:
                            out.append(Row(f"fastpath_{op}",
                                           f"{series} {hops} hop", size,
                                           value, "us"))
        return out

    def render(self) -> str:
        from ..reporting import render_table

        lines = [
            render_table([r for r in self.rows()
                          if r.experiment == "fastpath_put"],
                         "Put latency, baseline vs fastpath [us]"),
            "",
            render_table([r for r in self.rows()
                          if r.experiment == "fastpath_get"],
                         "Get latency, baseline vs fastpath [us]"),
            "",
            "acceptance targets (fastpath/baseline ratios):",
        ]
        for name, t in self.target_results().items():
            op = ">=" if t["direction"] == "min" else "<="
            shown = "-" if t["ratio"] is None else f"{t['ratio']:.3f}"
            verdict = "PASS" if t["pass"] else "FAIL"
            lines.append(f"  {verdict}  {name}: {shown} {op} {t['bound']}"
                         f"  ({t['metric']})")
        bar = self.baseline.get("barrier_us")
        far = self.fastpath.get("barrier_us")
        if bar and far:
            lines.append(f"  barrier_all: base {bar:.1f}us  "
                         f"fast {far:.1f}us")
        lines.append(
            "  wall clock: " + "  ".join(
                f"{k}={v:.2f}s" for k, v in self.wall_clock_s.items())
            + "  (informational, not gated)")
        return "\n".join(lines)


def _measure_grid(config: ShmemConfig, n_pes: int = 3) -> dict[str, float]:
    """One config's virtual-time metric grid.

    PE 0 measures; barriers between points keep the ring quiet so each
    measurement sees an idle fabric (same discipline as fig9).
    """
    max_size = max(SIZES)
    metrics: dict[str, float] = {}

    def main(pe):
        sym = yield from pe.malloc(max_size)
        src = pe.local_alloc(max_size)
        dst = pe.local_alloc(max_size)
        yield from pe.barrier_all()
        for hops in HOPS:
            target = (pe.my_pe() + hops) % pe.num_pes()
            for size in SIZES + [INLINE_SIZE]:
                if pe.my_pe() == 0:
                    start = pe.rt.env.now
                    yield from pe.put_from(sym, src, size, target,
                                           mode=Mode.DMA)
                    lat = pe.rt.env.now - start
                    key = f"put_us.{size_label(size)}.{hops}hop"
                    metrics[key] = lat
                    metrics[f"put_MBps.{size_label(size)}.{hops}hop"] = \
                        size / lat
                yield from pe.barrier_all()
            for size in SIZES:
                if pe.my_pe() == 0:
                    start = pe.rt.env.now
                    yield from pe.get_into(dst, sym, size, target,
                                           mode=Mode.DMA)
                    lat = pe.rt.env.now - start
                    key = f"get_us.{size_label(size)}.{hops}hop"
                    metrics[key] = lat
                    metrics[f"get_MBps.{size_label(size)}.{hops}hop"] = \
                        size / lat
                yield from pe.barrier_all()
        start = pe.rt.env.now
        yield from pe.barrier_all()
        if pe.my_pe() == 0:
            metrics["barrier_us"] = pe.rt.env.now - start
        return True

    run_spmd(main, n_pes=n_pes,
             cluster_config=ClusterConfig(n_hosts=n_pes),
             shmem_config=config)
    return metrics


def run_fastpath_compare(
        fastpath_config: Optional[Any] = None,
        n_pes: int = 3) -> FastpathCompareResult:
    """Measure both grids and package the comparison."""
    from ...core.fastpath import FastpathConfig

    fp = fastpath_config or FastpathConfig()
    wall: dict[str, float] = {}
    t0 = time.perf_counter()
    baseline = _measure_grid(ShmemConfig(), n_pes=n_pes)
    wall["baseline_grid"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    fastpath = _measure_grid(ShmemConfig(fastpath=fp), n_pes=n_pes)
    wall["fastpath_grid"] = time.perf_counter() - t0
    # The CI smoke workload's wall clock (the satellite perf lever):
    # recorded for the log, machine-dependent, never gated.
    from .fig9 import run_fig9

    t0 = time.perf_counter()
    run_fig9(sizes=[1 << 10, 1 << 13])
    wall["smoke"] = time.perf_counter() - t0
    return FastpathCompareResult(baseline=baseline, fastpath=fastpath,
                                 wall_clock_s=wall)


@dataclass
class CheckResult:
    """Outcome of gating a fresh run against a checked-in BENCH_PR5.json."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  REGRESSION: {failure}")
        lines.append("perf gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def check_against(result: FastpathCompareResult, path: str,
                  tolerance: Optional[float] = None) -> CheckResult:
    """Gate ``result`` on the checked-in reference at ``path``.

    Only *fastpath virtual-time* metrics gate: ``*_us`` keys may not grow,
    and ``*_MBps`` keys may not shrink, by more than ``tolerance``
    (default: the reference file's recorded tolerance).  Wall-clock
    numbers are machine-dependent and only reported.
    """
    with open(path) as fh:
        reference = json.load(fh)
    if reference.get("schema") != SCHEMA:
        return CheckResult(ok=False, failures=[
            f"{path}: unknown schema {reference.get('schema')!r} "
            f"(expected {SCHEMA})"
        ])
    tol = tolerance if tolerance is not None \
        else float(reference.get("tolerance", 0.10))
    ref_fast = reference["virtual"]["fastpath"]
    failures: list[str] = []
    notes: list[str] = []
    for key, ref_value in sorted(ref_fast.items()):
        current = result.fastpath.get(key)
        if current is None:
            failures.append(f"{key}: metric disappeared from the grid")
            continue
        if ref_value <= 0:
            continue
        if key.startswith(("put_us", "get_us")) or key.endswith("_us"):
            worse = (current - ref_value) / ref_value
        else:  # throughput: lower is worse
            worse = (ref_value - current) / ref_value
        if worse > tol:
            failures.append(
                f"{key}: {ref_value:.2f} -> {current:.2f} "
                f"({worse * 100:+.1f}% worse, tolerance {tol * 100:.0f}%)"
            )
    if not result.targets_pass:
        for name, t in result.target_results().items():
            if not t["pass"]:
                failures.append(
                    f"acceptance target {name} failed: ratio "
                    f"{t['ratio']} vs bound {t['bound']} ({t['direction']})"
                )
    ref_wall = reference.get("wall_clock_s", {})
    for key, value in result.wall_clock_s.items():
        ref_value = ref_wall.get(key)
        if ref_value:
            notes.append(
                f"wall clock {key}: {ref_value:.2f}s -> {value:.2f}s "
                f"(not gated)"
            )
    return CheckResult(ok=not failures, failures=failures, notes=notes)
