"""Ablation experiments for the design choices flagged in DESIGN.md §6.

Each function sweeps one knob and returns :class:`Row` records so the
benches can print figure-style tables:

* :func:`run_routing_ablation` — FIXED_RIGHT (paper) vs SHORTEST.
* :func:`run_chunk_ablation` — bypass forward-chunk size.
* :func:`run_get_chunk_ablation` — get-response chunk size.
* :func:`run_dma_page_ablation` — DMA per-descriptor cost / pinned vs paged.
* :func:`run_barrier_ablation` — ring vs dissemination vs centralized.
* :func:`run_scaling_ablation` — ring size 2..8 (total throughput + barrier).
* :func:`run_irq_ablation` — interrupt-path latency sensitivity.
"""

from __future__ import annotations

from typing import Optional

from ...core import Mode, ShmemConfig, run_spmd
from ...fabric import ClusterConfig, Direction, RoutingPolicy
from ...host import CostModel
from ...ntb import DmaConfig, NtbPortConfig
from ..reporting import Row
from .fig8 import run_fig8

__all__ = [
    "run_dma_channel_ablation",
    "run_routing_ablation",
    "run_chunk_ablation",
    "run_get_chunk_ablation",
    "run_dma_page_ablation",
    "run_barrier_ablation",
    "run_scaling_ablation",
    "run_irq_ablation",
]


def _timed_put_program(size: int, hops: int, mode: Mode = Mode.DMA,
                       use_barrier: bool = True):
    """PE0 puts `size` bytes `hops` away; returns (put_us, barrier_us)."""

    def main(pe):
        sym = yield from pe.malloc(size)
        src = pe.local_alloc(size)
        yield from pe.barrier_all()
        put_us = None
        target = (pe.my_pe() + hops) % pe.num_pes()
        if pe.my_pe() == 0:
            start = pe.rt.env.now
            yield from pe.put_from(sym, src, size, target, mode=mode)
            put_us = pe.rt.env.now - start
        start = pe.rt.env.now
        if use_barrier:
            yield from pe.barrier_all()
        return (put_us, pe.rt.env.now - start)

    return main


def run_routing_ablation(size: int = 128 * 1024,
                         n_pes: int = 5) -> list[Row]:
    """Put latency + delivery time to every distance under both policies.

    SHORTEST should roughly halve worst-case delivery distance on odd
    rings; the paper's FIXED_RIGHT pays the full circumference.
    """
    rows: list[Row] = []
    for policy in (RoutingPolicy.FIXED_RIGHT, RoutingPolicy.SHORTEST):
        for hops in range(1, n_pes):
            report = run_spmd(
                _timed_put_program(size, hops),
                n_pes=n_pes,
                cluster_config=ClusterConfig(n_hosts=n_pes),
                shmem_config=ShmemConfig(routing=policy),
            )
            put_us, barrier_us = report.results[0]
            rows.append(Row("ablation_routing", policy.value,
                            hops, put_us, "us",
                            extra={"metric": "put_latency"}))
            rows.append(Row("ablation_routing",
                            f"{policy.value}+flush",
                            hops, put_us + barrier_us, "us",
                            extra={"metric": "delivered_latency"}))
    return rows


def run_chunk_ablation(size: int = 512 * 1024,
                       chunks: Optional[list[int]] = None) -> list[Row]:
    """2-hop put latency vs bypass chunk size (store-and-forward grain)."""
    chunks = chunks or [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
    rows: list[Row] = []
    for chunk in chunks:
        for slots in (1, 2, 4):
            config = ShmemConfig(fwd_chunk=chunk, bypass_slots=slots)
            report = run_spmd(
                _timed_put_program(size, hops=2),
                n_pes=3, shmem_config=config,
            )
            put_us, barrier_us = report.results[0]
            rows.append(Row("ablation_chunks", f"{slots} slot(s)",
                            chunk, put_us + barrier_us, "us",
                            extra={"put_us": put_us}))
    return rows


def run_get_chunk_ablation(size: int = 256 * 1024,
                           chunks: Optional[list[int]] = None) -> list[Row]:
    """Get throughput vs response chunk size — the knob that trades
    per-chunk interrupt overhead against buffer footprint."""
    chunks = chunks or [2048, 4096, 8192, 16 * 1024, 32 * 1024]
    rows: list[Row] = []
    for chunk in chunks:
        measurements = {}

        def main(pe, _chunk=chunk):
            sym = yield from pe.malloc(size)
            yield from pe.barrier_all()
            if pe.my_pe() == 0:
                start = pe.rt.env.now
                yield from pe.get(sym, size, 1)
                measurements["us"] = pe.rt.env.now - start
            yield from pe.barrier_all()

        run_spmd(main, n_pes=3,
                 shmem_config=ShmemConfig(get_chunk=chunk))
        rows.append(Row("ablation_get_chunk", "get 1 hop", chunk,
                        size / measurements["us"], "MB/s"))
    return rows


def run_dma_page_ablation(size: int = 512 * 1024) -> list[Row]:
    """Put throughput vs per-descriptor cost — quantifies how much of the
    OpenSHMEM Put ceiling is the paged-memory SG walk (DESIGN.md §5)."""
    rows: list[Row] = []
    for per_descriptor_us in (0.0, 3.0, 9.0, 18.0):
        dma = DmaConfig(per_descriptor_us=per_descriptor_us)
        config = ClusterConfig(n_hosts=3, ntb=NtbPortConfig(dma=dma))
        report = run_spmd(
            _timed_put_program(size, hops=1),
            n_pes=3, cluster_config=config,
        )
        put_us, _barrier = report.results[0]
        rows.append(Row("ablation_dma_pages", "put DMA 1 hop",
                        int(per_descriptor_us * 10), size / put_us,
                        "MB/s",
                        extra={"per_descriptor_us": per_descriptor_us}))
    return rows


def run_barrier_ablation(n_pes_list: Optional[list[int]] = None,
                         repeats: int = 5) -> list[Row]:
    """Mean empty-barrier latency per strategy per ring size."""
    n_pes_list = n_pes_list or [2, 3, 4, 6, 8]
    rows: list[Row] = []
    for strategy in ("ring", "dissemination", "centralized"):
        for n_pes in n_pes_list:
            measurements = {}

            def main(pe):
                yield from pe.barrier_all()  # warm-up / allocation
                start = pe.rt.env.now
                for _ in range(repeats):
                    yield from pe.barrier_all()
                if pe.my_pe() == 0:
                    measurements["us"] = (pe.rt.env.now - start) / repeats

            run_spmd(main, n_pes=n_pes,
                     cluster_config=ClusterConfig(n_hosts=n_pes),
                     shmem_config=ShmemConfig(barrier=strategy))
            rows.append(Row("ablation_barrier", strategy, n_pes,
                            measurements["us"], "us"))
    return rows


def run_scaling_ablation(n_pes_list: Optional[list[int]] = None,
                         size: int = 256 * 1024) -> list[Row]:
    """Fig. 8(d)-style total network throughput as the ring grows."""
    n_pes_list = n_pes_list or [2, 3, 4, 6, 8]
    rows: list[Row] = []
    for n_pes in n_pes_list:
        result = run_fig8(sizes=[size], n_hosts=n_pes, repeats=2)
        totals = {
            row.series: row.value
            for row in result.rows if row.experiment == "fig8d"
        }
        rows.append(Row("ablation_scaling", "Ring total", n_pes,
                        totals["Ring"], "MB/s"))
        rows.append(Row("ablation_scaling", "Independent total", n_pes,
                        totals["Independent"], "MB/s"))
    return rows


def run_dma_channel_ablation(size: int = 64 * 1024,
                             n_streams: int = 4) -> list[Row]:
    """DMA channel count: raw driver concurrency vs OpenSHMEM puts.

    Two series per channel count:

    * ``raw`` — n_streams concurrent driver-level DMA requests on one
      adapter: channels overlap per-request overheads, so throughput
      rises (until the shared pump saturates).
    * ``shmem`` — n_streams NBI puts to the same neighbor: **flat**, and
      that flatness is the finding.  The mailbox protocol allows one
      outstanding data-window message per direction, so the runtime can
      never keep a second channel busy — consistent with the paper's
      prototype driving a single DMA channel.
    """
    from ...fabric import Cluster
    from ...ntb.device import DATA_WINDOW

    rows: list[Row] = []
    for channels in (1, 2, 4):
        dma = DmaConfig(channels=channels)
        config = ClusterConfig(n_hosts=3, ntb=NtbPortConfig(dma=dma))

        # -- raw driver concurrency -------------------------------------
        cluster = Cluster(config)
        cluster.run_probe()
        env = cluster.env
        src_drv = cluster.driver(0, Direction.RIGHT)
        dst_drv = cluster.driver(1, Direction.LEFT)
        rx = cluster.host(1).alloc_pinned(size * n_streams)
        dst_drv.endpoint.program_incoming(DATA_WINDOW, rx.phys, rx.nbytes)
        dst_drv.endpoint.lut.add(src_drv.requester_id, 1)
        src_drv.endpoint.lut.add(dst_drv.requester_id, 0)
        buffers = [cluster.host(0).alloc_pinned(size)
                   for _ in range(n_streams)]

        def raw_burst():
            start = env.now
            requests = [
                src_drv.endpoint.dma_write(
                    DATA_WINDOW, index * size, [tx.segment]
                )
                for index, tx in enumerate(buffers)
            ]
            yield env.all_of([r.done for r in requests])
            return n_streams * size / (env.now - start)

        process = env.process(raw_burst())
        env.run(until=process)
        rows.append(Row("ablation_dma_channels", "raw", channels,
                        process.value, "MB/s"))

        # -- OpenSHMEM NBI puts -------------------------------------------
        measurements = {}

        def main(pe):
            dest = yield from pe.malloc(size * n_streams)
            srcs = [pe.local_alloc(size) for _ in range(n_streams)]
            yield from pe.barrier_all()
            if pe.my_pe() == 0:
                start = pe.rt.env.now
                for index, src in enumerate(srcs):
                    pe.put_nbi(dest + index * size, src, size, 1)
                yield from pe.quiet()
                measurements["us"] = pe.rt.env.now - start
            yield from pe.barrier_all()

        run_spmd(main, n_pes=3,
                 cluster_config=ClusterConfig(
                     n_hosts=3, ntb=NtbPortConfig(dma=dma)))
        rows.append(Row("ablation_dma_channels", "shmem", channels,
                        n_streams * size / measurements["us"], "MB/s"))
    return rows


def run_irq_ablation(size: int = 8192) -> list[Row]:
    """Small-put latency & get throughput vs interrupt-path costs."""
    rows: list[Row] = []
    for label, msi_us, wake_us in [
        ("fast irq", 5.0, 5.0),
        ("default", 20.0, 30.0),
        ("slow irq", 60.0, 90.0),
    ]:
        cost = CostModel(msi_delivery_us=msi_us, thread_wake_us=wake_us)
        config = ClusterConfig(n_hosts=3, cost_model=cost)
        measurements = {}

        def main(pe):
            sym = yield from pe.malloc(size)
            yield from pe.barrier_all()
            if pe.my_pe() == 0:
                start = pe.rt.env.now
                yield from pe.get(sym, size, 1)
                measurements["get_us"] = pe.rt.env.now - start
            yield from pe.barrier_all()

        run_spmd(main, n_pes=3, cluster_config=config)
        rows.append(Row("ablation_irq", label, size,
                        size / measurements["get_us"], "MB/s",
                        extra={"msi_us": msi_us, "wake_us": wake_us}))
    return rows
