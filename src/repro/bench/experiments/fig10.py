"""Figure 10: ``shmem_barrier_all`` latency following Puts of varying size.

Per the paper: "shmem_barrier_all() is called requesting Put operations
with varying sizes, and each latency of shmem_barrier_all() is measured."
Every PE issues a Put of the given size/mode/hop-distance and immediately
enters the barrier; the measured latency (on PE 0) therefore includes
quiescing the outstanding transfer plus the two-round ring token exchange
— which is why the barrier cost is substantial relative to the data ops
and stays roughly flat as size grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core import ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ..reporting import PAPER_SIZES, Row
from .fig9 import CONFIGS

__all__ = ["Fig10Result", "run_fig10"]


@dataclass
class Fig10Result:
    rows: list[Row]

    def series(self, name: str) -> dict[int, float]:
        return {r.size: r.value for r in self.rows if r.series == name}


def run_fig10(sizes: Optional[list[int]] = None,
              shmem_config: Optional[ShmemConfig] = None,
              n_pes: int = 3,
              barrier_repeats: int = 3) -> Fig10Result:
    """Regenerate Fig. 10; one averaged barrier latency per
    (series, size) in experiment ``fig10``."""
    sizes = sizes or PAPER_SIZES
    max_size = max(sizes)
    measurements: dict[tuple[str, int], float] = {}

    def main(pe):
        sym = yield from pe.malloc(max_size)
        src = pe.local_alloc(max_size)
        yield from pe.barrier_all()
        for series, mode, hops in CONFIGS:
            target = (pe.my_pe() + hops) % pe.num_pes()
            for size in sizes:
                total = 0.0
                for _ in range(barrier_repeats):
                    yield from pe.put_from(sym, src, size, target,
                                           mode=mode)
                    start = pe.rt.env.now
                    yield from pe.barrier_all()
                    total += pe.rt.env.now - start
                if pe.my_pe() == 0:
                    measurements[(series, size)] = total / barrier_repeats
        return True

    run_spmd(main, n_pes=n_pes,
             cluster_config=ClusterConfig(n_hosts=n_pes),
             shmem_config=shmem_config)

    return Fig10Result([
        Row("fig10", series, size, value, "us")
        for (series, size), value in measurements.items()
    ])
