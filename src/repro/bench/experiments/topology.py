"""Topology scaling bench + gate (``python -m repro.bench --topology``).

The PR-9 capstone: the same SPMD workload measured across ring x mesh x
torus at N = 4 / 16 / 64 hosts, recording BENCH_PR9.json.

Per (topology, N) scenario the workload measures, in virtual time:

* ``put_round_us`` — mean wall of a round of concurrent 4 KiB puts,
  every PE targeting its antipodal partner (the worst-distance pairing
  that makes diameter differences visible: N/2 hops on a ring, |x|+|y|
  on a mesh, wrapped halves on a torus);
* ``get_round_us`` — the same pairing for Gets (request + response both
  traverse the fabric, so Get amplifies diameter 2x);
* ``barrier_us`` — mean of several back-to-back ``barrier_all`` rounds
  (ring token vs dissemination rounds);
* ``bisection_bytes_per_us`` — aggregate throughput with every PE
  streaming 32 KiB across the bisection at once — the figure where the
  torus's extra cables pay off over the ring's two.

A separate fault scenario runs a 4x4 mesh with a cable severed mid-run:
traffic must reroute around the hole (``reroutes > 0``) and the strict
final round must verify on every PE — the end-to-end proof that
dimension-order routing, the BFS detour and the relay plane compose.

The 64-host sweep triples the runtime; it is included only with
``include_slow=True`` (CI marks it slow, the checked-in reference always
carries it).  All recorded figures are deterministic virtual-time
measurements, gated with the usual tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ...core import PE, PeerUnreachableError, ShmemConfig, run_spmd
from ...fabric import ClusterConfig
from ...faults import FaultPlan

__all__ = ["TopologyBenchResult", "run_topology_bench", "run_scenario",
           "run_fault_scenario", "check_against", "SCHEMA", "SCENARIOS",
           "SLOW_SCENARIOS"]

SCHEMA = "bench-pr9/v1"

#: virtual figures are deterministic; tolerance buys headroom against
#: intentional model recalibrations only (same policy as the PR 5/7/8
#: gates).
TOLERANCE = 0.10

#: latency-phase payload per put/get (bytes).
_SLOT = 4096
#: bisection-phase payload per PE (bytes).
_BISECTION_BYTES = 32 * 1024
#: rounds per latency phase / barrier phase.
_ROUNDS = 4
_BARRIER_ROUNDS = 4

#: (name, topology, n_hosts, dims) — the quick sweep (N = 4 and 16).
SCENARIOS: tuple = (
    ("ring4", "ring", 4, None),
    ("mesh2x2", "mesh", 4, (2, 2)),
    ("torus4", "torus", 4, (4,)),
    ("ring16", "ring", 16, None),
    ("mesh4x4", "mesh", 16, (4, 4)),
    ("torus4x4", "torus", 16, (4, 4)),
)

#: the 64-host tier (slow: ~3x the quick sweep's wall time).
SLOW_SCENARIOS: tuple = (
    ("ring64", "ring", 64, None),
    ("mesh8x8", "mesh", 64, (8, 8)),
    ("torus4x4x4", "torus", 64, (4, 4, 4)),
)

#: fault scenario shape: 4x4 mesh, one interior x-cable severed mid-run.
_FAULT_EDGE = (5, 6)
_FAULT_AT_US = 3_000.0
_FAULT_ROUNDS = 6
_FAULT_GAP_US = 1_500.0


def _pattern(rnd: int, sender: int, nbytes: int = _SLOT) -> np.ndarray:
    base = (rnd * 37 + sender * 11 + 1) & 0xFF
    return (np.arange(nbytes, dtype=np.uint16) * 7 + base).astype(np.uint8)


def _bench_body(pe: PE):
    """The per-PE workload: antipodal puts, gets, barriers, bisection."""
    me, n = pe.my_pe(), pe.num_pes()
    partner = (me + n // 2) % n
    writer = (me - n // 2) % n  # who puts into *my* slot
    sym = yield from pe.malloc(_SLOT)
    big = yield from pe.malloc(_BISECTION_BYTES)
    env = pe.rt.env
    timings: dict[str, float] = {}

    yield from pe.barrier_all()  # warm-up: spread of init costs ends here

    t0 = env.now
    for rnd in range(_ROUNDS):
        yield from pe.put_array(sym, _pattern(rnd, me), partner)
        yield from pe.barrier_all()
    timings["put_round_us"] = (env.now - t0) / _ROUNDS
    ok = bool(np.array_equal(pe.read_symmetric(sym, _SLOT),
                             _pattern(_ROUNDS - 1, writer)))

    t0 = env.now
    for rnd in range(_ROUNDS):
        got = yield from pe.get(sym, _SLOT, partner)
        ok = ok and bool(np.array_equal(
            got, _pattern(_ROUNDS - 1, (partner - n // 2) % n)))
    timings["get_round_us"] = (env.now - t0) / _ROUNDS

    yield from pe.barrier_all()
    t0 = env.now
    for _ in range(_BARRIER_ROUNDS):
        yield from pe.barrier_all()
    timings["barrier_us"] = (env.now - t0) / _BARRIER_ROUNDS

    t0 = env.now
    yield from pe.put_array(
        big, _pattern(99, me, _BISECTION_BYTES), partner)
    yield from pe.barrier_all()
    timings["bisection_us"] = env.now - t0
    ok = ok and bool(np.array_equal(
        pe.read_symmetric(big, _BISECTION_BYTES),
        _pattern(99, writer, _BISECTION_BYTES)))
    return {"ok": ok, **timings}


def run_scenario(name: str, topology: str, n: int,
                 dims: Optional[tuple] = None,
                 router: Optional[str] = None) -> dict[str, Any]:
    """One (topology, N) point of the sweep; all figures virtual-time."""
    config = ClusterConfig(n_hosts=n, topology=topology, dims=dims)
    report = run_spmd(_bench_body, n_pes=n, cluster_config=config,
                      shmem_config=ShmemConfig(router=router))
    ok = all(r["ok"] for r in report.results)
    # Concurrent phases: the slowest PE defines the round wall.
    phase = {key: max(r[key] for r in report.results)
             for key in ("put_round_us", "get_round_us", "barrier_us",
                         "bisection_us")}
    aggregate = n * _BISECTION_BYTES
    return {
        "name": name,
        "topology": topology,
        "n_hosts": n,
        "dims": list(dims) if dims else None,
        "router": report.runtimes[0].router.name,
        "cables": len(report.cluster.cables),
        "ok": ok,
        "virtual": {
            "elapsed_us": report.elapsed_us,
            "put_round_us": phase["put_round_us"],
            "get_round_us": phase["get_round_us"],
            "barrier_us": phase["barrier_us"],
            "bisection_bytes_per_us":
                aggregate / phase["bisection_us"],
        },
    }


def _fault_body(pe: PE):
    """Rounds of antipodal traffic across a mid-run cable sever."""
    me, n = pe.my_pe(), pe.num_pes()
    partner = (me + n // 2) % n
    writer = (me - n // 2) % n
    sym = yield from pe.malloc(_SLOT)
    degraded = 0
    for rnd in range(_FAULT_ROUNDS):
        try:
            yield from pe.put_array(sym, _pattern(rnd, me), partner)
            yield from pe.barrier_all()
        except PeerUnreachableError:
            degraded += 1
        yield pe.rt.env.timeout(_FAULT_GAP_US)
    # Strict final round: by now every host has learned the dead edge and
    # must route around it.
    yield from pe.put_array(sym, _pattern(99, me), partner)
    yield from pe.barrier_all()
    final_ok = bool(np.array_equal(pe.read_symmetric(sym, _SLOT),
                                   _pattern(99, writer)))
    return {"final_ok": final_ok, "degraded": degraded}


def run_fault_scenario() -> dict[str, Any]:
    """4x4 mesh, interior cable severed mid-run; traffic must reroute."""
    plan = FaultPlan.single_sever(*_FAULT_EDGE, at_us=_FAULT_AT_US)
    config = ShmemConfig(faults=plan, max_retries=8,
                         retry_backoff_us=200.0)
    report = run_spmd(
        _fault_body, n_pes=16,
        cluster_config=ClusterConfig(n_hosts=16, topology="mesh",
                                     dims=(4, 4)),
        shmem_config=config,
        # degraded rounds skew per-PE allocation logs; payloads are
        # verified directly instead (same opt-out as the chaos demo).
        check_heap_consistency=False,
    )
    reroutes = sum(rt.reroutes for rt in report.runtimes)
    dropped = sum(rt.service.dropped_forwards for rt in report.runtimes
                  if rt.service is not None)
    return {
        "edge": list(_FAULT_EDGE),
        "sever_at_us": _FAULT_AT_US,
        "final_ok": all(r["final_ok"] for r in report.results),
        "virtual": {
            "elapsed_us": report.elapsed_us,
            "reroutes": float(reroutes),
            "degraded_rounds": float(
                sum(r["degraded"] for r in report.results)),
            "dropped_forwards": float(dropped),
        },
    }


@dataclass
class TopologyBenchResult:
    """Everything BENCH_PR9.json records plus render/gate helpers."""

    scenarios: list[dict[str, Any]]
    fault: dict[str, Any]
    include_slow: bool

    @property
    def targets_pass(self) -> bool:
        return (all(s["ok"] for s in self.scenarios)
                and self.fault["final_ok"]
                and self.fault["virtual"]["reroutes"] > 0)

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "tolerance": TOLERANCE,
            "include_slow": self.include_slow,
            "scenarios": self.scenarios,
            "fault_scenario": self.fault,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [
            f"{'scenario':<12} {'n':>3} {'router':<16} {'cables':>6} "
            f"{'put_us':>9} {'get_us':>9} {'barrier_us':>10} "
            f"{'bisect B/us':>11} {'ok':>3}"
        ]
        for s in self.scenarios:
            v = s["virtual"]
            lines.append(
                f"{s['name']:<12} {s['n_hosts']:>3} {s['router']:<16} "
                f"{s['cables']:>6} {v['put_round_us']:>9.1f} "
                f"{v['get_round_us']:>9.1f} {v['barrier_us']:>10.1f} "
                f"{v['bisection_bytes_per_us']:>11.1f} "
                f"{'ok' if s['ok'] else 'NO':>3}"
            )
        f = self.fault
        lines.append(
            f"fault (mesh4x4, sever {tuple(f['edge'])} at "
            f"{f['sever_at_us']:.0f}us): reroutes="
            f"{f['virtual']['reroutes']:.0f} degraded_rounds="
            f"{f['virtual']['degraded_rounds']:.0f} "
            f"final_ok={f['final_ok']}"
        )
        if not self.include_slow:
            lines.append("(64-host tier skipped; run with --topology-full "
                         "to include it)")
        return "\n".join(lines)


def run_topology_bench(include_slow: bool = False) -> TopologyBenchResult:
    """The full sweep (quick tiers; 64-host tier with ``include_slow``)."""
    sweep = SCENARIOS + (SLOW_SCENARIOS if include_slow else ())
    scenarios = [run_scenario(name, topology, n, dims)
                 for name, topology, n, dims in sweep]
    fault = run_fault_scenario()
    return TopologyBenchResult(scenarios=scenarios, fault=fault,
                               include_slow=include_slow)


@dataclass
class CheckResult:
    """Outcome of gating a fresh run against a checked-in BENCH_PR9.json."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  REGRESSION: {failure}")
        lines.append("topology gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def check_against(result: TopologyBenchResult, path: str,
                  tolerance: Optional[float] = None) -> CheckResult:
    """Gate a fresh run against a checked-in BENCH_PR9.json.

    Every scenario present in both runs must agree within tolerance on
    all virtual figures; a quick run is allowed to omit the reference's
    slow tier (noted, not failed), but a scenario the reference knows
    that a *full* run lost is a regression.
    """
    with open(path) as fh:
        reference = json.load(fh)
    if reference.get("schema") != SCHEMA:
        return CheckResult(ok=False, failures=[
            f"{path}: unknown schema {reference.get('schema')!r} "
            f"(expected {SCHEMA})"
        ])
    tol = tolerance if tolerance is not None \
        else float(reference.get("tolerance", TOLERANCE))
    failures: list[str] = []
    notes: list[str] = []
    current = {s["name"]: s for s in result.scenarios}
    slow_names = {name for name, *_ in SLOW_SCENARIOS}
    for ref in reference.get("scenarios", []):
        name = ref["name"]
        scenario = current.get(name)
        if scenario is None:
            if name in slow_names and not result.include_slow:
                notes.append(f"{name}: slow tier skipped in this run")
                continue
            failures.append(f"{name}: scenario disappeared from the run")
            continue
        if not scenario["ok"]:
            failures.append(f"{name}: data verification failed")
        for key, ref_value in sorted(ref.get("virtual", {}).items()):
            value = scenario["virtual"].get(key)
            if value is None:
                failures.append(f"{name}.{key}: figure disappeared")
                continue
            if ref_value == 0:
                if value != 0:
                    failures.append(
                        f"{name}.{key}: 0 -> {value:g} (was zero)")
                continue
            drift = abs(value - ref_value) / abs(ref_value)
            if drift > tol:
                failures.append(
                    f"{name}.{key}: {ref_value:g} -> {value:g} "
                    f"({drift * 100:+.1f}% drift, "
                    f"tolerance {tol * 100:.0f}%)"
                )
    if not result.fault["final_ok"]:
        failures.append("fault scenario: final round failed to verify")
    if result.fault["virtual"]["reroutes"] <= 0:
        failures.append("fault scenario: no reroutes recorded "
                        "(sever did not exercise the detour path)")
    ref_fault = reference.get("fault_scenario", {}).get("virtual", {})
    for key, ref_value in sorted(ref_fault.items()):
        value = result.fault["virtual"].get(key)
        if value is None:
            failures.append(f"fault.{key}: figure disappeared")
            continue
        if ref_value == 0:
            if value != 0:
                failures.append(f"fault.{key}: 0 -> {value:g} (was zero)")
            continue
        drift = abs(value - ref_value) / abs(ref_value)
        if drift > tol:
            failures.append(
                f"fault.{key}: {ref_value:g} -> {value:g} "
                f"({drift * 100:+.1f}% drift, tolerance {tol * 100:.0f}%)"
            )
    return CheckResult(ok=not failures, failures=failures, notes=notes)
