"""Figure 8: raw NTB transfer rate — independent link vs ring-simultaneous.

The paper's first experiment bypasses OpenSHMEM entirely: block DMA
transfers between pinned buffers over a single NTB connection, measured
(a–c) per link with only that link active ("Independent") and with all
three links transferring at once ("Ring"), plus (d) the network total.

Mechanically: host *i*'s right adapter DMAs blocks into host *i+1*'s
incoming data window.  The ring-simultaneous dip comes from each host's
memory/root-complex port serving both its outgoing stream (DMA source
reads) and its incoming stream (peer writes) at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...fabric import Cluster, ClusterConfig, Direction
from ...ntb.device import DATA_WINDOW
from ..reporting import PAPER_SIZES, Row

__all__ = ["Fig8Result", "run_fig8"]

#: Transfers averaged per measured point.
REPEATS = 4


@dataclass
class Fig8Result:
    rows: list[Row]

    def series(self, name: str) -> dict[int, float]:
        return {r.size: r.value for r in self.rows if r.series == name}


def _prepare_links(cluster: Cluster, buffer_bytes: int):
    """Program every link for raw pinned-buffer DMA; returns per-link
    (src_driver, tx_pinned) handles keyed by (src_host, dst_host)."""
    handles = {}
    for src, dst in cluster.topology.links():
        src_driver = cluster.driver(src, Direction.RIGHT)
        dst_driver = cluster.driver(dst, Direction.LEFT)
        rx = cluster.host(dst).alloc_pinned(buffer_bytes)
        dst_driver.endpoint.program_incoming(DATA_WINDOW, rx.phys, rx.nbytes)
        dst_driver.endpoint.lut.add(src_driver.requester_id, dst)
        src_driver.endpoint.lut.add(dst_driver.requester_id, src)
        tx = cluster.host(src).alloc_pinned(buffer_bytes)
        handles[(src, dst)] = (src_driver, tx)
    return handles


def _burst(env, driver, tx, size: int, repeats: int):
    """Process generator: `repeats` back-to-back DMA block transfers;
    returns achieved MB/s (virtual time)."""
    start = env.now
    for _ in range(repeats):
        request = yield from driver.dma_write_segments(
            DATA_WINDOW, 0, [tx.segment]
        )
        yield request.done
    elapsed = env.now - start
    return repeats * size / elapsed


def run_fig8(sizes: Optional[list[int]] = None, n_hosts: int = 3,
             repeats: int = REPEATS,
             cluster_config: Optional[ClusterConfig] = None) -> Fig8Result:
    """Regenerate Fig. 8(a)–(d).

    Returns rows with series ``"Independent"`` / ``"Ring"`` per link
    experiment (``fig8a``..``fig8c`` for the 3-host case, generically
    ``link i->j``) and the totals in ``fig8d``.
    """
    sizes = sizes or PAPER_SIZES
    rows: list[Row] = []
    max_size = max(sizes)

    link_ids = None
    for size in sizes:
        # A fresh cluster per size keeps measurements independent and the
        # event queue small.
        cluster = Cluster(cluster_config or ClusterConfig(n_hosts=n_hosts))
        cluster.run_probe()
        env = cluster.env
        handles = _prepare_links(cluster, max(size, 4096))
        link_ids = list(handles)

        # Independent: one link at a time, nothing else moving.
        independent = {}
        for link, (driver, tx) in handles.items():
            process = env.process(_burst(env, driver, tx, size, repeats))
            env.run(until=process)
            independent[link] = process.value

        # Ring-simultaneous: all links at once.
        processes = {
            link: env.process(_burst(env, driver, tx, size, repeats))
            for link, (driver, tx) in handles.items()
        }
        env.run(until=env.all_of(list(processes.values())))
        simultaneous = {link: p.value for link, p in processes.items()}

        for index, link in enumerate(link_ids):
            sub = chr(ord("a") + index) if n_hosts == 3 else f"link{index}"
            experiment = f"fig8{sub}"
            rows.append(Row(experiment, "Independent", size,
                            independent[link], "MB/s",
                            extra={"link": link}))
            rows.append(Row(experiment, "Ring", size,
                            simultaneous[link], "MB/s",
                            extra={"link": link}))
        rows.append(Row("fig8d", "Independent", size,
                        sum(independent.values()), "MB/s"))
        rows.append(Row("fig8d", "Ring", size,
                        sum(simultaneous.values()), "MB/s"))
    return Fig8Result(rows)
