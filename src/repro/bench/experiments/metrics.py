"""Metered smoke run + SLO gate (``python -m repro.bench --metrics``).

Runs a small mixed workload (puts at three sizes, gets, AMOs, barriers)
with the metrics ticker sampling and a :class:`~repro.obsv.DesProfiler`
hooked on the dispatch loop, then:

* evaluates the bundled SLO ruleset (:data:`repro.obsv.slo.DEFAULT_RULES`)
  against the run's metrics — a clean run must pass every rule;
* packages the registry snapshot (``repro-metrics/v1``) for
  ``python -m repro.obsv metrics`` and the CI artifact upload;
* records the profiler's events/sec into ``BENCH_PR7.json`` — the
  ROADMAP item-4 kernel-throughput baseline.

:func:`check_against` gates a fresh run on the checked-in reference:
virtual-time figures (deterministic) within the recorded tolerance,
events/sec (machine-dependent) only against a generous floor ratio.

This module never reads the host clock itself — the determinism lint
bans ``time`` here; all wall-clock figures come from the profiler.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ...core import ShmemConfig, run_spmd
from ...core.program import SpmdReport, make_cluster
from ...fabric import ClusterConfig
from ...obsv.profiler import DesProfiler
from ...obsv.slo import SloReport, SloRuleSet

__all__ = ["MetricsSmokeResult", "run_metrics_smoke", "check_against",
           "SCHEMA"]

SCHEMA = "bench-pr7/v1"

#: sizes exercised by the smoke workload (bytes).
PUT_SIZES = [32, 4 * 1024, 64 * 1024]
GET_SIZES = [4 * 1024, 64 * 1024]
_MAX_SIZE = max(PUT_SIZES + GET_SIZES)
_ROUNDS = 4

#: ticker period for the smoke run: fine enough for real sparklines.
SAMPLE_WINDOW_US = 200.0

#: virtual figures are deterministic; the tolerance only buys headroom
#: against intentional model recalibrations (same as the PR-5 gate).
TOLERANCE = 0.10

#: events/sec is machine-dependent: fail only below this fraction of the
#: recorded baseline (a shared CI runner is easily 2-3x slower than the
#: machine that wrote the reference).
EVENTS_PER_SEC_FLOOR = 0.30


def _workload(pe):
    """Mixed traffic from every PE: puts, gets, AMOs, barriers."""
    sym = yield from pe.malloc(_MAX_SIZE)
    counter = yield from pe.malloc(8)
    src = pe.local_alloc(_MAX_SIZE)
    dst = pe.local_alloc(_MAX_SIZE)
    yield from pe.barrier_all()
    target = (pe.my_pe() + 1) % pe.num_pes()
    for size in PUT_SIZES:
        for _ in range(_ROUNDS):
            yield from pe.put_from(sym, src, size, target)
        yield from pe.barrier_all()
    for size in GET_SIZES:
        for _ in range(_ROUNDS):
            yield from pe.get_into(dst, sym, size, target)
        yield from pe.barrier_all()
    for _ in range(_ROUNDS):
        yield from pe.atomic_add(counter, 1, target)
    yield from pe.barrier_all()
    total = yield from pe.atomic_fetch(counter, pe.my_pe())
    return int(total)


@dataclass
class MetricsSmokeResult:
    """Everything the gate, the artifact and the dashboard need."""

    report: SpmdReport
    snapshot: dict[str, Any]
    slo: SloReport
    profile: dict[str, Any]

    @property
    def ok(self) -> bool:
        return self.slo.ok and all(
            count == _ROUNDS for count in self.report.results
        )

    def virtual_figures(self) -> dict[str, float]:
        """The deterministic figures the gate pins (virtual time only)."""
        stats = self.report.stats()
        registry = self.report.metrics
        out = {
            "elapsed_us": self.report.elapsed_us,
            "puts": float(stats["puts"]),
            "gets": float(stats["gets"]),
            "amos": float(stats["amos"]),
            "events_dispatched": float(
                registry.value("sim.events_dispatched") or 0.0),
            "samples_taken": float(registry.samples_taken),
        }
        for key, hist in registry.hist.items():
            if key.startswith(("put_us.", "get_us.", "amo_us.",
                               "barrier_us.")):
                out[f"p50({key})"] = hist.quantile(0.5)
                out[f"p99({key})"] = hist.quantile(0.99)
        return out

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "tolerance": TOLERANCE,
            "events_per_sec_floor": EVENTS_PER_SEC_FLOOR,
            "virtual": self.virtual_figures(),
            "slo": self.slo.to_json(),
            # Machine-dependent; gated only against the floor ratio.
            "profile": {
                "events": self.profile["events"],
                "events_per_sec": self.profile["events_per_sec"],
                "wall_s": self.profile["wall_s"],
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write_snapshot(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        figures = self.virtual_figures()
        lines = [
            f"metered smoke: {figures['puts']:.0f} puts, "
            f"{figures['gets']:.0f} gets, {figures['amos']:.0f} AMOs in "
            f"{figures['elapsed_us']:.1f} virtual us "
            f"({figures['samples_taken']:.0f} ticker samples)",
            f"kernel: {self.profile['events']} events in "
            f"{self.profile['wall_s']:.3f} s wall "
            f"({self.profile['events_per_sec']:,.0f} events/sec, "
            f"informational)",
            "",
            self.slo.render(),
        ]
        return "\n".join(lines)


def run_metrics_smoke(n_pes: int = 3,
                      rules: Optional[SloRuleSet] = None
                      ) -> MetricsSmokeResult:
    """Run the metered workload and judge it against the SLO rules."""
    cluster = make_cluster(n_pes, ClusterConfig(n_hosts=n_pes))
    profiler = DesProfiler(cluster.env)
    profiler.install()
    try:
        report = run_spmd(
            _workload, n_pes=n_pes, cluster=cluster,
            shmem_config=ShmemConfig(
                metrics_window_us=SAMPLE_WINDOW_US),
        )
    finally:
        profiler.uninstall()
    ruleset = rules or SloRuleSet.default()
    slo = ruleset.evaluate(report.metrics)
    return MetricsSmokeResult(
        report=report,
        snapshot=report.metrics.to_json(),
        slo=slo,
        profile=profiler.to_json(),
    )


@dataclass
class CheckResult:
    """Outcome of gating a fresh run against a checked-in BENCH_PR7.json."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  REGRESSION: {failure}")
        lines.append("metrics gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def check_against(result: MetricsSmokeResult, path: str,
                  tolerance: Optional[float] = None) -> CheckResult:
    """Gate ``result`` on the checked-in reference at ``path``.

    Virtual figures may not drift beyond ``tolerance`` (default: the
    reference file's).  Events/sec may not fall below the recorded floor
    fraction of the reference.  The bundled SLO ruleset must pass.
    """
    with open(path) as fh:
        reference = json.load(fh)
    if reference.get("schema") != SCHEMA:
        return CheckResult(ok=False, failures=[
            f"{path}: unknown schema {reference.get('schema')!r} "
            f"(expected {SCHEMA})"
        ])
    tol = tolerance if tolerance is not None \
        else float(reference.get("tolerance", TOLERANCE))
    failures: list[str] = []
    notes: list[str] = []

    current = result.virtual_figures()
    for key, ref_value in sorted(reference.get("virtual", {}).items()):
        value = current.get(key)
        if value is None:
            failures.append(f"{key}: figure disappeared from the run")
            continue
        if ref_value == 0:
            if value != 0:
                failures.append(f"{key}: 0 -> {value:g} (was zero)")
            continue
        drift = abs(value - ref_value) / abs(ref_value)
        if drift > tol:
            failures.append(
                f"{key}: {ref_value:g} -> {value:g} "
                f"({drift * 100:+.1f}% drift, tolerance {tol * 100:.0f}%)"
            )

    if not result.slo.ok:
        for bad in result.slo.failures:
            failures.append(f"SLO failed: {bad.render()}")

    floor = float(reference.get("events_per_sec_floor",
                                EVENTS_PER_SEC_FLOOR))
    ref_eps = float(reference.get("profile", {})
                    .get("events_per_sec", 0.0))
    eps = result.profile["events_per_sec"]
    if ref_eps > 0:
        notes.append(
            f"kernel throughput: {ref_eps:,.0f} -> {eps:,.0f} events/sec "
            f"(floor {floor:.0%} of baseline)"
        )
        if eps < floor * ref_eps:
            failures.append(
                f"events/sec collapsed: {eps:,.0f} < "
                f"{floor:.0%} of baseline {ref_eps:,.0f}"
            )
    return CheckResult(ok=not failures, failures=failures, notes=notes)
