"""Experiment drivers: one module per paper table/figure + ablations."""

from .ablations import (
    run_barrier_ablation,
    run_dma_channel_ablation,
    run_chunk_ablation,
    run_dma_page_ablation,
    run_get_chunk_ablation,
    run_irq_ablation,
    run_routing_ablation,
    run_scaling_ablation,
)
from .chaos import ChaosResult, run_chaos_demo
from .fig8 import Fig8Result, run_fig8
from .fig9 import CONFIGS, Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .table1 import Table1Result, run_table1
from .topology import TopologyBenchResult, run_topology_bench

__all__ = [
    "run_barrier_ablation",
    "run_dma_channel_ablation",
    "run_chunk_ablation",
    "run_dma_page_ablation",
    "run_get_chunk_ablation",
    "run_irq_ablation",
    "run_routing_ablation",
    "run_scaling_ablation",
    "ChaosResult",
    "run_chaos_demo",
    "Fig8Result",
    "run_fig8",
    "CONFIGS",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Table1Result",
    "run_table1",
    "TopologyBenchResult",
    "run_topology_bench",
]
