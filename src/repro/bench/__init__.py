"""Benchmark harness: regenerates every table and figure of the paper."""

#: Deferred (PEP 562): the full harness pulls in every experiment module;
#: the smoke CLI path (`python -m repro.bench --smoke`) needs none of it,
#: and package ``__init__`` runs before ``__main__`` gets a say.
_LAZY_SUBMODULE = {
    "ExperimentReport": "harness",
    "fig8_shape_checks": "harness",
    "fig9_shape_checks": "harness",
    "fig10_shape_checks": "harness",
    "run_all": "harness",
    "PAPER_SIZES": "reporting",
    "Row": "reporting",
    "ShapeCheck": "reporting",
    "check_shapes": "reporting",
    "format_shape_report": "reporting",
    "render_table": "reporting",
    "size_label": "reporting",
}


def __getattr__(name: str):
    submodule = _LAZY_SUBMODULE.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value
    return value


__all__ = [
    "ExperimentReport",
    "fig8_shape_checks",
    "fig9_shape_checks",
    "fig10_shape_checks",
    "run_all",
    "PAPER_SIZES",
    "Row",
    "ShapeCheck",
    "check_shapes",
    "format_shape_report",
    "render_table",
    "size_label",
]
