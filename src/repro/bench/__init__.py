"""Benchmark harness: regenerates every table and figure of the paper."""

from .harness import (
    ExperimentReport,
    fig8_shape_checks,
    fig9_shape_checks,
    fig10_shape_checks,
    run_all,
)
from .reporting import (
    PAPER_SIZES,
    Row,
    ShapeCheck,
    check_shapes,
    format_shape_report,
    render_table,
    size_label,
)

__all__ = [
    "ExperimentReport",
    "fig8_shape_checks",
    "fig9_shape_checks",
    "fig10_shape_checks",
    "run_all",
    "PAPER_SIZES",
    "Row",
    "ShapeCheck",
    "check_shapes",
    "format_shape_report",
    "render_table",
    "size_label",
]
