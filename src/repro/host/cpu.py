"""CPU cost model: where every software microsecond comes from.

The paper's measured latencies are dominated not by wire time but by the
software path: staging copies, uncached MMIO reads, doorbell writes, ISR
scheduling.  This module centralizes those costs in one calibratable
:class:`CostModel` (defaults per DESIGN.md §5) and a :class:`Cpu` that
charges them as virtual time.

The key asymmetry — **write-combined PIO writes are ~4x faster than
uncached PIO reads** — is what collapses memcpy-Get in Fig. 9(b)/(d): a Get
that memcpy-s *from* an NTB window pays the read rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..sim import Environment

__all__ = ["CostModel", "Cpu"]


@dataclass(frozen=True)
class CostModel:
    """Calibratable software/platform costs (all rates MB/s == bytes/µs).

    Attributes
    ----------
    local_memcpy_mbps:
        Cached DRAM-to-DRAM ``memcpy`` bandwidth.
    pio_write_mbps:
        CPU store bandwidth into a write-combined NTB window (the paper's
        "memcpy" Put path).
    pio_read_mbps:
        CPU load bandwidth from an uncached NTB window (the paper's
        "memcpy" Get path) — PCIe reads are non-posted, hence brutal.
    mmio_reg_write_us / mmio_reg_read_us:
        Single posted register write / non-posted register read (doorbell,
        scratchpad).
    thread_wake_us:
        Scheduler latency from ISR wakeup to the service thread running.
    isr_entry_us:
        Interrupt entry/exit and doorbell drain at the CPU.
    msi_delivery_us:
        MSI flight time from the adapter to the CPU's APIC.
    memory_port_mbps:
        Host DRAM/root-complex port shared by DMA streams (contention term
        of Fig. 8's ring-vs-independent dip).
    dma_submit_us:
        Driver cost to build and ring one DMA request.
    pio_chunk:
        Granularity at which PIO loops check for doorbell work.
    """

    local_memcpy_mbps: float = 3200.0
    pio_write_mbps: float = 105.0
    pio_read_mbps: float = 25.0
    mmio_reg_write_us: float = 0.3
    mmio_reg_read_us: float = 0.9
    thread_wake_us: float = 30.0
    isr_entry_us: float = 5.0
    msi_delivery_us: float = 20.0
    memory_port_mbps: float = 5200.0
    dma_submit_us: float = 3.0
    pio_chunk: int = 4096

    def __post_init__(self) -> None:
        for attr in ("local_memcpy_mbps", "pio_write_mbps", "pio_read_mbps",
                     "memory_port_mbps"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("mmio_reg_write_us", "mmio_reg_read_us",
                     "thread_wake_us", "isr_entry_us", "msi_delivery_us",
                     "dma_submit_us"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.pio_chunk < 64:
            raise ValueError("pio_chunk unreasonably small")

    # -- derived helpers -------------------------------------------------------
    def local_memcpy_us(self, nbytes: int) -> float:
        return nbytes / self.local_memcpy_mbps

    def pio_write_us(self, nbytes: int) -> float:
        return nbytes / self.pio_write_mbps

    def pio_read_us(self, nbytes: int) -> float:
        return nbytes / self.pio_read_mbps


class Cpu:
    """Charges :class:`CostModel` costs as virtual time on one host.

    Cores are assumed plentiful (the paper's i7 runs the application thread
    and the NTB service thread on separate cores), so concurrent charges do
    not serialize against each other; only explicitly shared stages (the
    memory port, links, DMA engines) contend.
    """

    def __init__(self, env: Environment, cost: CostModel, name: str = "cpu"):
        self.env = env
        self.cost = cost
        self.name = name
        #: accumulated busy microseconds (diagnostics)
        self.busy_us = 0.0

    def _charge(self, duration: float) -> Generator:
        if duration > 0:
            self.busy_us += duration
            yield self.env.timeout(duration)

    # -- copies ------------------------------------------------------------------
    def local_memcpy(self, nbytes: int) -> Generator:
        """Cached local copy."""
        yield from self._charge(self.cost.local_memcpy_us(nbytes))

    def pio_write(self, nbytes: int) -> Generator:
        """Store loop into a write-combined MMIO window."""
        yield from self._charge(self.cost.pio_write_us(nbytes))

    def pio_read(self, nbytes: int) -> Generator:
        """Load loop from an uncached MMIO window."""
        yield from self._charge(self.cost.pio_read_us(nbytes))

    # -- register / driver ops -------------------------------------------------------
    def mmio_reg_write(self) -> Generator:
        yield from self._charge(self.cost.mmio_reg_write_us)

    def mmio_reg_read(self) -> Generator:
        yield from self._charge(self.cost.mmio_reg_read_us)

    def dma_submit(self) -> Generator:
        yield from self._charge(self.cost.dma_submit_us)

    def thread_wake(self) -> Generator:
        yield from self._charge(self.cost.thread_wake_us)

    def isr_entry(self) -> Generator:
        yield from self._charge(self.cost.isr_entry_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cpu {self.name} busy={self.busy_us:.1f}us>"
