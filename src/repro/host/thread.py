"""Kernel-thread abstraction: named processes with interrupt-style wakeups.

§III-B.1 step 4: ``shmem_init`` "create[s] a thread to run and process
asynchronous data transferring to support the one-sided communication
property".  :class:`KernelThread` is the vehicle for that service thread
and for the per-PE application threads.

A thread body is a generator taking the thread object; it sleeps on
:meth:`wait_work` and is woken by :meth:`kick` (typically from an interrupt
top half).  Wakeups are level-latched: a kick while runnable is remembered,
so work posted between "drained queue" and "went to sleep" is never lost —
the classic lost-wakeup race the tests exercise explicitly.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..sim import Environment, Event, Process

__all__ = ["KernelThread"]


class KernelThread:
    """A schedulable host thread with a latched wakeup flag."""

    def __init__(self, env: Environment, name: str,
                 body: Callable[["KernelThread"], Generator],
                 wake_latency_us: float = 0.0):
        self.env = env
        self.name = name
        self.wake_latency_us = wake_latency_us
        self._pending_kick = False
        self._sleeper: Optional[Event] = None
        self._stopped = False
        self.process: Process = env.process(body(self), name=name)
        #: diagnostics
        self.kick_count = 0
        self.wake_count = 0

    # -- body-side API -------------------------------------------------------------
    def wait_work(self) -> Generator:
        """Sleep until kicked (returns immediately if a kick is latched).

        Charges ``wake_latency_us`` (scheduler delay) on every *actual*
        sleep-then-wake transition, but not when work was already pending —
        a busy service thread doesn't pay the wake cost per item.
        """
        if self._stopped:
            # Return immediately so the body can observe stop_requested.
            self._pending_kick = False
            return
        if self._pending_kick:
            self._pending_kick = False
            return
        self._sleeper = self.env.event()
        yield self._sleeper
        self._sleeper = None
        self._pending_kick = False
        self.wake_count += 1
        if self.wake_latency_us > 0:
            yield self.env.timeout(self.wake_latency_us)

    @property
    def is_sleeping(self) -> bool:
        return self._sleeper is not None

    @property
    def stop_requested(self) -> bool:
        return self._stopped

    # -- external API ------------------------------------------------------------------
    def kick(self) -> None:
        """Wake the thread (idempotent; latches if it is running)."""
        self.kick_count += 1
        if self._sleeper is not None and not self._sleeper.triggered:
            self._sleeper.succeed()
        else:
            self._pending_kick = True

    def stop(self) -> None:
        """Ask the body to exit at its next wait; kicks it awake."""
        self._stopped = True
        self.kick()

    def join(self) -> Event:
        """Event that fires when the body generator returns."""
        return self.process

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sleeping" if self.is_sleeping else (
            "stopped" if self._stopped else "runnable"
        )
        return f"<KernelThread {self.name} {state}>"
