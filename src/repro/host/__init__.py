"""Host node substrate: CPU costs, interrupts, threads, the Host itself."""

from .cpu import CostModel, Cpu
from .interrupts import InterruptController, InterruptError
from .node import Host, HostConfig, PinnedBuffer, UserBuffer
from .thread import KernelThread

__all__ = [
    "CostModel",
    "Cpu",
    "InterruptController",
    "InterruptError",
    "Host",
    "HostConfig",
    "PinnedBuffer",
    "UserBuffer",
    "KernelThread",
]
