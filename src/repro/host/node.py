"""The host node: CPU, DRAM, virtual memory, interrupts and NTB adapters.

A :class:`Host` models one of the paper's Core-i7 boxes: local DRAM with a
shared memory/root-complex port, a CPU cost model, an MSI interrupt
controller, a virtual address space for user mappings, and one seated NTB
adapter per cabled topology port — "left"/"right" on the paper's ring, up
to six (``x-`` … ``z+``) on the mesh/torus fabrics of docs/TOPOLOGY.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..memory import (
    Allocation,
    PhysSegment,
    PhysicalMemory,
    RegionAllocator,
    VirtualAddressSpace,
)
from ..sim import BandwidthServer, Environment, Tracer
from .cpu import CostModel, Cpu
from .interrupts import InterruptController

__all__ = ["HostConfig", "UserBuffer", "PinnedBuffer", "Host"]

#: Virtual base for user (application) mappings — keeps user virtual
#: addresses visibly distinct from physical ones in traces.
USER_VIRT_BASE = 0x7000_0000_0000

#: Gap left between consecutive user mappings (guard pages).
USER_VIRT_GAP = 1 << 20


@dataclass(frozen=True)
class HostConfig:
    """Static shape of one host."""

    memory_size: int = 256 * 1024 * 1024
    page_size: int = 4096
    #: user mmap chunks come from DRAM in pieces of this size, modelling the
    #: "actual size of memory allocation has a limit" fragmentation of
    #: §III-B.2 — virtually contiguous, physically scattered.
    mmap_fragment_size: int = 64 * 1024
    num_irq_vectors: int = 64
    #: aggressive APIC MSI coalescing (failure-injection mode; the mailbox
    #: protocol is self-clocking and must survive it).
    coalesce_interrupts: bool = False

    def __post_init__(self) -> None:
        if self.memory_size < 1 << 20:
            raise ValueError("host memory unreasonably small")
        if self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a power of two")
        if self.mmap_fragment_size % self.page_size:
            raise ValueError("mmap fragment size must be page-aligned")


@dataclass(frozen=True)
class UserBuffer:
    """A user allocation: virtually contiguous, physically scattered."""

    virt: int
    nbytes: int
    fragments: tuple[Allocation, ...]

    @property
    def virt_end(self) -> int:
        return self.virt + self.nbytes


@dataclass(frozen=True)
class PinnedBuffer:
    """A physically contiguous, DMA-able allocation (single SG segment)."""

    allocation: Allocation

    @property
    def phys(self) -> int:
        return self.allocation.base

    @property
    def nbytes(self) -> int:
        return self.allocation.size

    @property
    def segment(self) -> PhysSegment:
        return PhysSegment(self.phys, self.nbytes)


class Host:
    """One compute node of the switchless cluster."""

    def __init__(self, env: Environment, host_id: int,
                 config: Optional[HostConfig] = None,
                 cost_model: Optional[CostModel] = None,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.host_id = host_id
        self.config = config or HostConfig()
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer
        self.name = f"host{host_id}"

        self.memory = PhysicalMemory(self.config.memory_size,
                                     name=f"{self.name}.dram")
        self.dram = RegionAllocator(
            0, self.config.memory_size,
            granularity=self.config.page_size,
            name=f"{self.name}.dram_alloc",
        )
        self.vas = VirtualAddressSpace(
            self.memory, name=f"{self.name}.vas",
            page_size=self.config.page_size,
        )
        self.cpu = Cpu(env, self.cost_model, name=f"{self.name}.cpu")
        self.memory_port = BandwidthServer(
            env, self.cost_model.memory_port_mbps, name=f"{self.name}.memport"
        )
        self.interrupts = InterruptController(
            env, self.cost_model.msi_delivery_us,
            num_vectors=self.config.num_irq_vectors,
            name=f"{self.name}.pic", tracer=tracer,
            coalesce=self.config.coalesce_interrupts,
        )
        #: NTB drivers by side ("left"/"right"), installed by the fabric.
        self.adapters: dict[str, "object"] = {}
        self._virt_cursor = USER_VIRT_BASE

    # -- memory management ------------------------------------------------------
    def alloc_pinned(self, nbytes: int, alignment: int = 4096) -> PinnedBuffer:
        """Physically contiguous driver/DMA buffer (one SG segment)."""
        allocation = self.dram.alloc(nbytes, alignment=alignment)
        return PinnedBuffer(allocation)

    def free_pinned(self, buffer: PinnedBuffer) -> None:
        self.dram.free(buffer.allocation)

    def mmap(self, nbytes: int, at: Optional[int] = None) -> UserBuffer:
        """Anonymous user mapping: contiguous virtual range over scattered
        physical fragments (the paper's symmetric-heap building block).

        ``at`` pins the virtual base (MAP_FIXED-style) — the symmetric heap
        uses it to concatenate chunks virtually (§III-B.2 / Fig. 3a).
        """
        if nbytes <= 0:
            raise ValueError(f"mmap size must be positive, got {nbytes}")
        page = self.config.page_size
        frag = self.config.mmap_fragment_size
        total = -(-nbytes // page) * page  # round up to pages
        virt_base = self._virt_cursor if at is None else at
        fragments: list[Allocation] = []
        cursor = virt_base
        remaining = total
        try:
            while remaining > 0:
                take = min(frag, remaining)
                allocation = self.dram.alloc(take, alignment=page)
                self.vas.map(cursor, allocation.base, allocation.size)
                fragments.append(allocation)
                cursor += allocation.size
                remaining -= allocation.size
        except Exception:
            # Unwind partial mappings on allocation failure.
            unwind = virt_base
            for allocation in fragments:
                self.vas.unmap(unwind)
                self.dram.free(allocation)
                unwind += allocation.size
            raise
        if at is None:
            self._virt_cursor = cursor + USER_VIRT_GAP
        return UserBuffer(virt_base, total, tuple(fragments))

    def munmap(self, buffer: UserBuffer) -> None:
        cursor = buffer.virt
        for allocation in buffer.fragments:
            self.vas.unmap(cursor)
            self.dram.free(allocation)
            cursor += allocation.size

    def user_segments(self, virt: int, nbytes: int) -> list[PhysSegment]:
        """Page-granular SG list for a user range (what DMA gets)."""
        return list(self.vas.phys_segments(virt, nbytes))

    # -- data helpers -------------------------------------------------------------
    def write_user(self, virt: int, data: bytes | np.ndarray) -> None:
        self.vas.write(virt, data)

    def read_user(self, virt: int, nbytes: int) -> np.ndarray:
        return self.vas.read(virt, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Host {self.name} adapters={sorted(self.adapters)} "
            f"dram_used={self.dram.used_bytes}>"
        )
