"""MSI interrupt controller: vectors, masking, delivery latency.

NTB doorbell bits arrive here.  The controller models the platform path
(adapter MSI write → APIC → CPU vectoring) with a configurable delivery
latency, then invokes the registered handler.  Handlers in this codebase
are tiny "top halves" that latch state and wake a service thread (the
"bottom half" of Fig. 5), mirroring the Linux driver split.

Pending semantics: raising a vector whose handler is still being delivered
coalesces (a vector is either idle or pending once) — matching edge MSI +
level doorbell behaviour, which is why the service thread must drain *all*
doorbell work per wake.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from ..sim import Environment, Tracer

__all__ = ["InterruptError", "InterruptController"]

Handler = Callable[[int], None]


class InterruptError(Exception):
    """Bad vector or double registration."""


class InterruptController:
    """Per-host interrupt controller with MSI delivery latency."""

    def __init__(self, env: Environment, delivery_latency_us: float,
                 num_vectors: int = 64, name: str = "pic",
                 tracer: Optional[Tracer] = None, coalesce: bool = False):
        """``coalesce=True`` drops raises whose vector already has a
        delivery in flight (aggressive APIC coalescing) — an ablation /
        failure-injection mode.  The default delivers every MSI write,
        matching distinct posted MSI transactions; the runtime's ACK
        counting depends on that."""
        if num_vectors < 1:
            raise InterruptError("need at least one vector")
        if delivery_latency_us < 0:
            raise InterruptError("negative delivery latency")
        self.env = env
        self.name = name
        self.tracer = tracer
        self.coalesce = coalesce
        self.delivery_latency_us = delivery_latency_us
        self.num_vectors = num_vectors
        self._handlers: dict[int, Handler] = {}
        self._masked: set[int] = set()
        self._in_flight: dict[int, int] = {}
        self._deferred: set[int] = set()  # raised while masked
        #: lifetime counts (diagnostics)
        self.raised_count = 0
        self.delivered_count = 0
        self.spurious_count = 0

    def _check_vector(self, vector: int) -> None:
        if not (0 <= vector < self.num_vectors):
            raise InterruptError(
                f"{self.name}: vector {vector} outside 0..{self.num_vectors - 1}"
            )

    # -- registration ------------------------------------------------------------
    def register(self, vector: int, handler: Handler) -> None:
        self._check_vector(vector)
        if vector in self._handlers:
            raise InterruptError(f"{self.name}: vector {vector} already claimed")
        self._handlers[vector] = handler

    def unregister(self, vector: int) -> None:
        self._check_vector(vector)
        self._handlers.pop(vector, None)

    def mask(self, vector: int) -> None:
        self._check_vector(vector)
        self._masked.add(vector)

    def unmask(self, vector: int) -> None:
        """Unmask; a delivery deferred while masked fires now."""
        self._check_vector(vector)
        self._masked.discard(vector)
        if vector in self._deferred:
            self._deferred.discard(vector)
            self._schedule_delivery(vector)

    def is_masked(self, vector: int) -> bool:
        return vector in self._masked

    # -- raising -------------------------------------------------------------------
    def raise_msi(self, vector: int) -> None:
        """Adapter-side MSI write; delivery completes after the latency."""
        self._check_vector(vector)
        self.raised_count += 1
        if self.tracer is not None:
            self.tracer.count(f"{self.name}.msi_raised")
        if vector in self._masked:
            self._deferred.add(vector)
            return
        if self.coalesce and self._in_flight.get(vector, 0) > 0:
            return  # coalesced with the in-flight delivery
        self._schedule_delivery(vector)

    def _schedule_delivery(self, vector: int) -> None:
        self._in_flight[vector] = self._in_flight.get(vector, 0) + 1
        timeout = self.env.timeout(self.delivery_latency_us)
        # A partial of the bound method (not a closure) keeps the delivery
        # step attributable to this controller's host for schedule analysis.
        timeout.callbacks.append(functools.partial(self._deliver_cb, vector))

    def _deliver_cb(self, vector: int, _evt: object) -> None:
        self._deliver(vector)

    def _deliver(self, vector: int) -> None:
        count = self._in_flight.get(vector, 0)
        if count <= 1:
            self._in_flight.pop(vector, None)
        else:
            self._in_flight[vector] = count - 1
        if vector in self._masked:
            # Masked during flight: defer until unmask.
            self._deferred.add(vector)
            return
        handler = self._handlers.get(vector)
        self.delivered_count += 1
        if handler is None:
            self.spurious_count += 1
            return
        handler(vector)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InterruptController {self.name} handlers={len(self._handlers)} "
            f"raised={self.raised_count} delivered={self.delivered_count}>"
        )
