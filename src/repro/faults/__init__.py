"""Deterministic fault injection for the simulated NTB fabric.

Plans (:class:`FaultPlan`) are pure virtual-time data; the
:class:`FaultInjector` schedules them against a cluster's cables and
adapters.  Drive it from ``ShmemConfig(faults=...)`` or the bench CLI
(``python -m repro.bench --chaos``).  An empty plan is free: it installs
nothing and leaves every run byte-identical in virtual time.
"""

from .injector import FaultInjector
from .plan import (
    DelayTlp,
    DropDoorbell,
    FaultEvent,
    FaultPlan,
    RestoreCable,
    SeverCable,
    validate_for_ring,
    validate_for_topology,
)

__all__ = [
    "DelayTlp",
    "DropDoorbell",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RestoreCable",
    "SeverCable",
    "validate_for_ring",
    "validate_for_topology",
]
