"""Deterministic fault plans: *what* goes wrong and *when* (virtual time).

A :class:`FaultPlan` is an immutable schedule of fault events expressed in
virtual microseconds.  Plans are pure data — applying them to a cluster is
the :class:`~repro.faults.injector.FaultInjector`'s job — so the same plan
can be replayed, diffed, or embedded in a bench config and always produce
the same virtual-time behaviour.

Event types
-----------
``SeverCable``
    Unplug the duplex cable between two adjacent hosts (both directions
    drop posted traffic, reads master-abort to all-ones).
``RestoreCable``
    Re-plug a previously severed cable.
``DropDoorbell``
    Swallow the next ``count`` doorbell rings sent by one adapter — the
    MMIO write is serialized and charged but the peer latch never fires
    (models a marginal cable eating individual TLPs).
``DelayTlp``
    Add ``extra_us`` of flight time to every TLP batch on a cable from
    ``at_us`` until ``until_us`` (models retraining / congested bridge).

Seeded helpers use a hand-rolled LCG rather than :mod:`random` so plans
stay reproducible across interpreter versions and the ``faults`` package
remains free of wall-clock/global-RNG dependencies (lint-enforced).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

__all__ = [
    "SeverCable",
    "RestoreCable",
    "DropDoorbell",
    "DelayTlp",
    "FaultEvent",
    "FaultPlan",
    "validate_for_ring",
    "validate_for_topology",
]


@dataclass(frozen=True)
class SeverCable:
    """Unplug the cable between adjacent hosts ``host_a`` and ``host_b``."""

    at_us: float
    host_a: int
    host_b: int

    def __post_init__(self) -> None:
        _check_edge(self.at_us, self.host_a, self.host_b)


@dataclass(frozen=True)
class RestoreCable:
    """Re-plug the cable between ``host_a`` and ``host_b``."""

    at_us: float
    host_a: int
    host_b: int

    def __post_init__(self) -> None:
        _check_edge(self.at_us, self.host_a, self.host_b)


@dataclass(frozen=True)
class DropDoorbell:
    """Swallow the next ``count`` doorbell rings from one adapter."""

    at_us: float
    host: int
    side: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_us}")
        # Port names are topology-defined ("left"/"right" on rings,
        # "x+"/"y-"/... on grids); existence is checked against the
        # actual topology in validate_for_topology.
        if not self.side or not isinstance(self.side, str):
            raise ValueError(f"side must be a port name, got {self.side!r}")
        if self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class DelayTlp:
    """Add ``extra_us`` flight time per TLP batch on a cable for a window."""

    at_us: float
    host_a: int
    host_b: int
    extra_us: float
    until_us: float

    def __post_init__(self) -> None:
        _check_edge(self.at_us, self.host_a, self.host_b)
        if self.extra_us <= 0:
            raise ValueError(f"extra delay must be > 0, got {self.extra_us}")
        if self.until_us <= self.at_us:
            raise ValueError(
                f"delay window must end after it starts "
                f"({self.at_us} .. {self.until_us})"
            )


FaultEvent = Union[SeverCable, RestoreCable, DropDoorbell, DelayTlp]


def _check_edge(at_us: float, host_a: int, host_b: int) -> None:
    if at_us < 0:
        raise ValueError(f"fault time must be >= 0, got {at_us}")
    if host_a < 0 or host_b < 0:
        raise ValueError(f"host ids must be >= 0, got ({host_a}, {host_b})")
    if host_a == host_b:
        raise ValueError(f"cable endpoints must differ, got host {host_a}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, virtual-time schedule of fault events.

    An empty plan is the explicit "no faults" value: configuring a runtime
    with ``FaultPlan()`` (or ``faults=None``) keeps every run byte-identical
    in virtual time to a build without the fault layer at all.
    """

    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, (SeverCable, RestoreCable,
                                      DropDoorbell, DelayTlp)):
                raise TypeError(f"not a fault event: {event!r}")

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def sorted_events(self) -> tuple[FaultEvent, ...]:
        """Events ordered by activation time (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.at_us))

    # -- convenience constructors ------------------------------------------
    @classmethod
    def single_sever(cls, host_a: int, host_b: int, at_us: float,
                     restore_at_us: float | None = None) -> "FaultPlan":
        """The canonical demo plan: one severed cable, optional re-plug."""
        events: list[FaultEvent] = [SeverCable(at_us, host_a, host_b)]
        if restore_at_us is not None:
            events.append(RestoreCable(restore_at_us, host_a, host_b))
        return cls(tuple(events))

    @classmethod
    def seeded_severs(cls, n_hosts: int, seed: int, *,
                      window_us: tuple[float, float] = (2_000.0, 20_000.0),
                      count: int = 1) -> "FaultPlan":
        """``count`` cable severs at LCG-randomised virtual times.

        Edges are drawn without replacement from the ring's ``n_hosts``
        cables; times are uniform over ``window_us``.  Same seed, same
        plan — forever.
        """
        if n_hosts < 2:
            raise ValueError("need at least 2 hosts for a ring")
        if count < 1 or count > n_hosts:
            raise ValueError(f"count must be in 1..{n_hosts}, got {count}")
        lo, hi = window_us
        if hi <= lo or lo < 0:
            raise ValueError(f"bad time window {window_us}")
        rng = _Lcg(seed)
        edges = [(a, (a + 1) % n_hosts) for a in range(n_hosts)]
        events: list[FaultEvent] = []
        for _ in range(count):
            edge = edges.pop(rng.below(len(edges)))
            at = lo + rng.uniform() * (hi - lo)
            events.append(SeverCable(round(at, 3), edge[0], edge[1]))
        return cls(tuple(events))


class _Lcg:
    """Tiny deterministic generator (Numerical Recipes constants)."""

    def __init__(self, seed: int):
        self._state = (seed ^ 0x5DEECE66D) & 0xFFFFFFFF

    def _next(self) -> int:
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._state

    def below(self, n: int) -> int:
        return self._next() % n

    def uniform(self) -> float:
        return self._next() / 0x100000000


def validate_for_ring(plan: FaultPlan, n_hosts: int) -> None:
    """Reject events naming edges that do not exist on an n-host ring.

    Historical entry point (rings only); :func:`validate_for_topology`
    is the general check used by the injector.
    """
    valid = set()
    for a in range(n_hosts):
        b = (a + 1) % n_hosts
        valid.add((a, b))
        valid.add((b, a))
    for event in plan:
        if isinstance(event, (SeverCable, RestoreCable, DelayTlp)):
            if (event.host_a, event.host_b) not in valid:
                raise ValueError(
                    f"{event!r}: no cable between hosts {event.host_a} "
                    f"and {event.host_b} on a {n_hosts}-host ring"
                )
        elif isinstance(event, DropDoorbell):
            if event.host >= n_hosts:
                raise ValueError(
                    f"{event!r}: host {event.host} outside 0..{n_hosts - 1}"
                )


def validate_for_topology(plan: FaultPlan, topology) -> None:
    """Reject events naming cables or ports ``topology`` does not have.

    ``topology`` is any :class:`~repro.fabric.topology.Topology` — duck
    typed (``cables()``/``ports()``/``n_hosts``) so this pure-data module
    stays import-free of the fabric package.
    """
    valid = set()
    for a, _ap, b, _bp in topology.cables():
        valid.add((a, b))
        valid.add((b, a))
    n_hosts = topology.n_hosts
    for event in plan:
        if isinstance(event, (SeverCable, RestoreCable, DelayTlp)):
            if (event.host_a, event.host_b) not in valid:
                raise ValueError(
                    f"{event!r}: no cable between hosts {event.host_a} "
                    f"and {event.host_b} on {topology!r}"
                )
        elif isinstance(event, DropDoorbell):
            if not (0 <= event.host < n_hosts):
                raise ValueError(
                    f"{event!r}: host {event.host} outside 0..{n_hosts - 1}"
                )
            if event.side not in topology.ports(event.host):
                raise ValueError(
                    f"{event!r}: host {event.host} has no "
                    f"{event.side!r} adapter on {topology!r}"
                )
