"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live cluster.

The injector turns pure plan data into scheduled virtual-time actions:
each event becomes one ``env.timeout`` whose callback flips the hardware
state — severing/restoring a :class:`~repro.pcie.DuplexLink`, arming a
doorbell-drop counter on an endpoint, or opening/closing a TLP delay
window on a cable's links.  The callbacks are zero-time register pokes
(no processes), so an *empty* plan installs nothing and perturbs nothing:
no-fault runs stay byte-identical in virtual time.

One injector per cluster (the runtime enforces a cluster singleton, like
ShmemSan); ``install()`` is idempotent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import Environment
from .plan import (
    DelayTlp,
    DropDoorbell,
    FaultEvent,
    FaultPlan,
    RestoreCable,
    SeverCable,
    validate_for_topology,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fabric.cluster import Cluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a fault plan against a cluster's cables and adapters."""

    def __init__(self, cluster: "Cluster", plan: Optional[FaultPlan] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.plan = plan or FaultPlan()
        validate_for_topology(self.plan, cluster.topology)
        #: (virtual time, event) pairs in application order, for tests
        #: and post-run reporting.
        self.applied: list[tuple[float, FaultEvent]] = []
        self._installed = False

    def install(self) -> None:
        """Schedule every plan event at its virtual activation time."""
        if self._installed or not self.plan:
            self._installed = True
            return
        for event in self.plan.sorted_events():
            delay = event.at_us - self.env.now
            if delay < 0:
                raise ValueError(
                    f"{event!r} is in the past (now={self.env.now})"
                )
            timeout = self.env.timeout(delay)
            timeout.callbacks.append(
                lambda _evt, ev=event: self._apply(ev)
            )
        self._installed = True

    # -- event application (zero-time callbacks) ---------------------------
    def _count(self, key: str) -> None:
        metrics = getattr(self.cluster, "metrics", None)
        if metrics is not None:
            metrics.inc(f"faults.{key}")

    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, SeverCable):
            self.cluster.cable_between(event.host_a, event.host_b).sever()
            self._count("severs")
        elif isinstance(event, RestoreCable):
            self.cluster.cable_between(event.host_a, event.host_b).restore()
            self._count("restores")
        elif isinstance(event, DropDoorbell):
            endpoint = self.cluster.driver(event.host, event.side).endpoint
            endpoint.fault_drop_doorbells += event.count
            self._count("doorbell_drops")
        elif isinstance(event, DelayTlp):
            cable = self.cluster.cable_between(event.host_a, event.host_b)
            for link in (cable.a_to_b, cable.b_to_a):
                link.fault_extra_delay_us += event.extra_us
            close = self.env.timeout(event.until_us - event.at_us)
            close.callbacks.append(
                lambda _evt, c=cable, x=event.extra_us: self._close_delay(c, x)
            )
            self._count("tlp_delays")
        else:  # pragma: no cover - plan validation makes this unreachable
            raise TypeError(f"unknown fault event {event!r}")
        self.applied.append((self.env.now, event))

    @staticmethod
    def _close_delay(cable, extra_us: float) -> None:
        for link in (cable.a_to_b, cable.b_to_a):
            link.fault_extra_delay_us = max(
                0.0, link.fault_extra_delay_us - extra_us
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector events={len(self.plan)} "
            f"applied={len(self.applied)}>"
        )
